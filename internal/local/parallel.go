package local

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// This file provides parallel evaluation of local algorithms. Local
// decision is embarrassingly parallel across nodes — each verdict depends
// only on that node's view — so a worker pool recovers most of the
// multi-core speedup on the large Section 3 instances. Tests pin the
// parallel results against the sequential runner.

// RunParallel evaluates an ID-using algorithm with one worker per CPU.
func RunParallel(alg Algorithm, in *graph.Instance) Outcome {
	n := in.N()
	verdicts := make([]Verdict, n)
	forEachNode(n, func(v int) {
		verdicts[v] = alg.Decide(graph.ViewOf(in, v, alg.Horizon()))
	})
	return aggregate(verdicts)
}

// RunObliviousParallel evaluates an Id-oblivious algorithm with one worker
// per CPU.
func RunObliviousParallel(alg ObliviousAlgorithm, l *graph.Labeled) Outcome {
	n := l.N()
	verdicts := make([]Verdict, n)
	forEachNode(n, func(v int) {
		verdicts[v] = alg.DecideOblivious(graph.ObliviousViewOf(l, v, alg.Horizon()))
	})
	return aggregate(verdicts)
}

// forEachNode fans the node range out over a worker pool. The work per node
// is independent (views are extracted per call; algorithms must be
// stateless, which the Algorithm contract already requires).
func forEachNode(n int, work func(v int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for v := 0; v < n; v++ {
			work(v)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for v := range next {
				work(v)
			}
		}()
	}
	for v := 0; v < n; v++ {
		next <- v
	}
	close(next)
	wg.Wait()
}
