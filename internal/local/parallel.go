package local

import (
	"repro/internal/engine"
	"repro/internal/graph"
)

// Parallel evaluation of local algorithms: local decision is embarrassingly
// parallel across nodes — each verdict depends only on that node's view —
// and the engine's sharded scheduler recovers the multi-core speedup on the
// large Section 3 instances with one batched view extractor per worker.
// Workers are capped at min(GOMAXPROCS, n) and small instances run inline,
// so no idle goroutines are ever spawned. Tests pin the parallel results
// against the sequential runner.

// RunParallel evaluates an ID-using algorithm on the engine's sharded
// worker pool.
func RunParallel(alg Algorithm, in *graph.Instance) Outcome {
	return engine.Eval(EngineDecider(alg), in, engine.Options{Scheduler: engine.Sharded})
}

// RunObliviousParallel evaluates an Id-oblivious algorithm on the engine's
// sharded worker pool.
func RunObliviousParallel(alg ObliviousAlgorithm, l *graph.Labeled) Outcome {
	return engine.EvalOblivious(EngineObliviousDecider(alg), l, engine.Options{Scheduler: engine.Sharded})
}
