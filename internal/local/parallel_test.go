package local

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ids"
)

func TestRunParallelMatchesSequential(t *testing.T) {
	alg := viewCodeAlgorithm(2)
	for _, n := range []int{1, 7, 40} {
		g := graph.Random(n, 0.2, int64(n))
		l := graph.RandomLabels(g, []graph.Label{"a", "b"}, int64(n)+1)
		in := graph.NewInstance(l, ids.Sequential(n))
		seq := Run(alg, in)
		par := RunParallel(alg, in)
		for v := range seq.Verdicts {
			if seq.Verdicts[v] != par.Verdicts[v] {
				t.Fatalf("n=%d node %d: parallel diverges", n, v)
			}
		}
		if seq.Accepted != par.Accepted {
			t.Fatalf("n=%d: acceptance diverges", n)
		}
	}
}

func TestRunObliviousParallelMatchesSequential(t *testing.T) {
	alg := ObliviousFunc("deg<=3", 1, func(view *graph.View) Verdict {
		return Verdict(view.G.Degree(view.Root) <= 3)
	})
	property := func(seed int64) bool {
		n := 2 + int(abs(seed)%30)
		l := graph.RandomLabels(graph.Random(n, 0.25, seed), []graph.Label{"x", "y"}, seed)
		a := RunOblivious(alg, l)
		b := RunObliviousParallel(alg, l)
		for v := range a.Verdicts {
			if a.Verdicts[v] != b.Verdicts[v] {
				return false
			}
		}
		return a.Accepted == b.Accepted
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunParallelEmpty(t *testing.T) {
	l := graph.UniformlyLabeled(graph.New(0), "")
	out := RunObliviousParallel(ObliviousFunc("x", 0, func(view *graph.View) Verdict { return Yes }), l)
	if out.Accepted || !errors.Is(out.Err, engine.ErrEmptyInstance) {
		t.Errorf("empty graph: %+v, want ErrEmptyInstance", out)
	}
}
