package local

import (
	"sync"

	"repro/internal/graph"
)

// This file implements the operational side of the LOCAL model: one
// goroutine per node, communicating over per-edge channels in synchronous
// rounds. After t rounds of full-information flooding each node has gathered
// (a superset of) its radius-t neighbourhood; the runtime then restricts the
// gathered knowledge to the induced ball B(v, t) so that the algorithm
// receives exactly the view (G, x, Id) |> B(v, t) of the functional
// definition. Tests verify that the two evaluation paths agree node for node
// (experiment E13).

// knowledge is a node's accumulated picture of the network, keyed by the
// runtime's hidden node addresses (never exposed to algorithms).
type knowledge struct {
	labels map[int]graph.Label
	ids    map[int]int
	edges  map[[2]int]struct{}
}

func newKnowledge() *knowledge {
	return &knowledge{
		labels: make(map[int]graph.Label),
		ids:    make(map[int]int),
		edges:  make(map[[2]int]struct{}),
	}
}

func (k *knowledge) addEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	k.edges[[2]int{u, v}] = struct{}{}
}

func (k *knowledge) merge(other *knowledge) {
	for v, lab := range other.labels {
		k.labels[v] = lab
	}
	for v, id := range other.ids {
		k.ids[v] = id
	}
	for e := range other.edges {
		k.edges[e] = struct{}{}
	}
}

func (k *knowledge) clone() *knowledge {
	c := newKnowledge()
	c.merge(k)
	return c
}

// RuntimeStats reports the operational cost of a message-passing run: the
// LOCAL model's "free" full-information flooding is anything but free, which
// is what the ablation experiment quantifies.
type RuntimeStats struct {
	Rounds int
	// Messages counts point-to-point sends (one per directed edge per round).
	Messages int
	// KnowledgeUnits sums the sizes (nodes known) of all sent snapshots, a
	// proxy for bandwidth in the full-information protocol.
	KnowledgeUnits int
}

// RunMessagePassing evaluates an ID-using algorithm by actually running the
// synchronous message-passing protocol with one goroutine per node. The
// result is identical to Run; the value of this path is that it demonstrates
// (and tests) the equivalence of the functional and operational definitions
// of a local algorithm, and serves as the model-ablation benchmark.
func RunMessagePassing(alg Algorithm, in *graph.Instance) Outcome {
	out, _ := RunMessagePassingStats(alg, in)
	return out
}

// RunMessagePassingStats is RunMessagePassing with cost accounting.
func RunMessagePassingStats(alg Algorithm, in *graph.Instance) (Outcome, RuntimeStats) {
	n := in.N()
	t := alg.Horizon()
	stats := RuntimeStats{Rounds: t}
	verdicts := make([]Verdict, n)
	if n == 0 {
		return aggregate(verdicts), stats
	}

	// Per-directed-edge channels, buffered for one message: within a round
	// every node first sends to all neighbours, then receives, so a buffer of
	// one message per edge keeps rounds deadlock-free.
	type edgeKey struct{ from, to int }
	chans := make(map[edgeKey]chan *knowledge, 2*in.G.M())
	for u := 0; u < n; u++ {
		for _, v := range in.G.Neighbors(u) {
			chans[edgeKey{from: u, to: v}] = make(chan *knowledge, 1)
		}
	}

	var statsMu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			know := newKnowledge()
			know.labels[v] = in.Labels[v]
			know.ids[v] = in.IDs[v]
			for _, u := range in.G.Neighbors(v) {
				know.addEdge(v, u)
			}
			sent, units := 0, 0
			for round := 0; round < t; round++ {
				// Send a snapshot to every neighbour, then receive from every
				// neighbour. The per-edge one-slot buffers make each round a
				// synchronisation barrier with the local neighbourhood.
				snapshot := know.clone()
				for _, u := range in.G.Neighbors(v) {
					chans[edgeKey{from: v, to: u}] <- snapshot
					sent++
					units += len(snapshot.labels)
				}
				for _, u := range in.G.Neighbors(v) {
					know.merge(<-chans[edgeKey{from: u, to: v}])
				}
			}
			verdicts[v] = alg.Decide(assembleView(know, v, t))
			statsMu.Lock()
			stats.Messages += sent
			stats.KnowledgeUnits += units
			statsMu.Unlock()
		}(v)
	}
	wg.Wait()
	return aggregate(verdicts), stats
}

// assembleView restricts gathered knowledge to the induced radius-t ball
// around centre and packages it as a View matching graph.ViewOf.
func assembleView(know *knowledge, centre, t int) *graph.View {
	// Build the known subgraph with a dense renumbering.
	index := make(map[int]int, len(know.labels))
	var order []int
	for v := range know.labels {
		order = append(order, v)
	}
	// Deterministic order (map iteration is random).
	sortInts(order)
	for i, v := range order {
		index[v] = i
	}
	g := graph.New(len(order))
	for e := range know.edges {
		u, okU := index[e[0]]
		w, okW := index[e[1]]
		if okU && okW {
			g.AddEdge(u, w)
		}
	}
	labels := make([]graph.Label, len(order))
	idsSlice := make([]int, len(order))
	for i, v := range order {
		labels[i] = know.labels[v]
		idsSlice[i] = know.ids[v]
	}
	l := graph.NewLabeled(g, labels)

	// Restrict to the induced ball around the centre. Distances within t in
	// the known subgraph equal true distances, because the full induced ball
	// (with all its shortest paths) has been gathered.
	ball := g.Ball(index[centre], t)
	sub, orig := l.InducedSubgraph(ball)
	ids := make([]int, len(orig))
	originals := make([]int, len(orig))
	for i, w := range orig {
		ids[i] = idsSlice[w]
		originals[i] = order[w]
	}
	return &graph.View{Labeled: sub, Root: 0, Radius: t, IDs: ids, Original: originals}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// RunMessagePassingOblivious is the Id-oblivious operational runtime: the
// protocol runs exactly as RunMessagePassing but the assembled views are
// stripped of identifiers before the algorithm sees them.
func RunMessagePassingOblivious(alg ObliviousAlgorithm, l *graph.Labeled) Outcome {
	// Internally the runtime needs addresses to route messages; it uses the
	// node indices as throwaway identifiers and strips them from the views.
	ids := make([]int, l.N())
	for i := range ids {
		ids[i] = i
	}
	adapter := AlgorithmFunc(alg.Name(), alg.Horizon(), func(view *graph.View) Verdict {
		return alg.DecideOblivious(view.StripIDs())
	})
	if l.N() == 0 {
		return aggregate(nil)
	}
	return RunMessagePassing(adapter, graph.NewInstance(l, ids))
}

// Rounds reports the number of synchronous rounds the operational runtime
// uses for an algorithm (equal to its horizon; exposed for reporting).
func Rounds(alg Algorithm) int { return alg.Horizon() }
