package local

import (
	"repro/internal/engine"
	"repro/internal/graph"
)

// The operational side of the LOCAL model — one goroutine per node,
// communicating over per-edge channels in synchronous rounds — lives in the
// engine as its MessagePassing backend (it was born in this file and moved
// there when all runners were unified). These wrappers preserve the
// historical entry points and the cost accounting. Tests verify that the
// operational and functional evaluation paths agree node for node
// (experiment E13).

// RuntimeStats reports the operational cost of a message-passing run: the
// LOCAL model's "free" full-information flooding is anything but free, which
// is what the ablation experiment quantifies.
type RuntimeStats struct {
	Rounds int
	// Messages counts point-to-point sends (one per directed edge per round).
	Messages int
	// KnowledgeUnits sums the sizes (nodes known) of all sent snapshots, a
	// proxy for bandwidth in the full-information protocol.
	KnowledgeUnits int
}

// RunMessagePassing evaluates an ID-using algorithm by actually running the
// synchronous message-passing protocol with one goroutine per node. The
// result is identical to Run; the value of this path is that it demonstrates
// (and tests) the equivalence of the functional and operational definitions
// of a local algorithm, and serves as the model-ablation benchmark.
func RunMessagePassing(alg Algorithm, in *graph.Instance) Outcome {
	out, _ := RunMessagePassingStats(alg, in)
	return out
}

// RunMessagePassingStats is RunMessagePassing with cost accounting.
func RunMessagePassingStats(alg Algorithm, in *graph.Instance) (Outcome, RuntimeStats) {
	out := engine.Eval(EngineDecider(alg), in, engine.Options{Scheduler: engine.MessagePassing})
	stats := RuntimeStats{
		Rounds:         alg.Horizon(),
		Messages:       out.Stats.Messages,
		KnowledgeUnits: out.Stats.KnowledgeUnits,
	}
	return out, stats
}

// RunMessagePassingOblivious is the Id-oblivious operational runtime: the
// protocol runs exactly as RunMessagePassing (with throwaway internal
// addresses for routing) but the assembled views are stripped of identifiers
// before the algorithm sees them.
func RunMessagePassingOblivious(alg ObliviousAlgorithm, l *graph.Labeled) Outcome {
	return engine.EvalOblivious(EngineObliviousDecider(alg), l,
		engine.Options{Scheduler: engine.MessagePassing})
}

// Rounds reports the number of synchronous rounds the operational runtime
// uses for an algorithm (equal to its horizon; exposed for reporting).
func Rounds(alg Algorithm) int { return alg.Horizon() }
