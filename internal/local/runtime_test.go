package local

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ids"
)

// viewCodeAlgorithm outputs Yes iff the full ID-aware view code satisfies a
// fixed predicate; its purpose is to make the verdict depend on every part of
// the view (structure, labels, and IDs) so that any discrepancy between the
// two runtimes shows up.
func viewCodeAlgorithm(t int) Algorithm {
	return AlgorithmFunc(fmt.Sprintf("viewhash-%d", t), t, func(view *graph.View) Verdict {
		code := view.Code()
		sum := 0
		for _, b := range []byte(code) {
			sum += int(b)
		}
		return Verdict(sum%3 != 0)
	})
}

func TestMessagePassingMatchesViewEvaluation(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path7":    graph.Path(7),
		"cycle8":   graph.Cycle(8),
		"star6":    graph.Star(6),
		"grid3x4":  graph.Grid(3, 4),
		"tree3":    graph.CompleteBinaryTree(3),
		"random20": graph.Random(20, 0.15, 3),
		"single":   graph.New(1),
	}
	for name, g := range graphs {
		for _, horizon := range []int{0, 1, 2, 3} {
			l := graph.RandomLabels(g, []graph.Label{"a", "b"}, 11)
			in := graph.NewInstance(l, ids.RandomBounded(g.N(), ids.Quadratic(), 13))
			alg := viewCodeAlgorithm(horizon)
			direct := Run(alg, in)
			mp := RunMessagePassing(alg, in)
			for v := range direct.Verdicts {
				if direct.Verdicts[v] != mp.Verdicts[v] {
					t.Fatalf("%s t=%d node %d: view=%s, message-passing=%s",
						name, horizon, v, direct.Verdicts[v], mp.Verdicts[v])
				}
			}
		}
	}
}

func TestMessagePassingViewsExact(t *testing.T) {
	// The assembled view must be byte-identical (as a canonical code) to the
	// directly extracted view, for every node: the runtime must restrict the
	// flooded knowledge to the induced ball.
	g := graph.Grid(3, 5)
	l := graph.RandomLabels(g, []graph.Label{"x", "y", "z"}, 5)
	in := graph.NewInstance(l, ids.Sequential(g.N()))
	horizon := 2
	var mismatch error
	probe := AlgorithmFunc("probe", horizon, func(view *graph.View) Verdict {
		direct := graph.ViewOf(in, view.Original[view.Root], horizon)
		if direct.Code() != view.Code() {
			mismatch = fmt.Errorf("node %d: view codes differ", view.Original[view.Root])
		}
		return Yes
	})
	RunMessagePassing(probe, in)
	if mismatch != nil {
		t.Fatal(mismatch)
	}
}

func TestMessagePassingOblivious(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(10), "c")
	alg := ObliviousFunc("deg2", 1, func(view *graph.View) Verdict {
		if view.IDs != nil {
			t.Error("oblivious runtime leaked IDs")
		}
		return Verdict(view.G.Degree(view.Root) == 2)
	})
	out := RunMessagePassingOblivious(alg, l)
	if !out.Accepted {
		t.Error("cycle should accept 2-regularity")
	}
	ref := RunOblivious(alg, l)
	for v := range ref.Verdicts {
		if ref.Verdicts[v] != out.Verdicts[v] {
			t.Fatalf("node %d differs between runtimes", v)
		}
	}
	empty := RunMessagePassingOblivious(alg, graph.UniformlyLabeled(graph.New(0), ""))
	if empty.Accepted || !errors.Is(empty.Err, engine.ErrEmptyInstance) {
		t.Errorf("empty graph: %+v, want ErrEmptyInstance", empty)
	}
}

func TestRuntimeEquivalence_Quick(t *testing.T) {
	property := func(seed int64, tRaw uint8) bool {
		n := 2 + int(abs(seed)%10)
		horizon := int(tRaw % 3)
		g := graph.Random(n, 0.3, seed)
		l := graph.RandomLabels(g, []graph.Label{"0", "1"}, seed+1)
		in := graph.NewInstance(l, ids.RandomBounded(n, ids.Linear(4), seed+2))
		alg := viewCodeAlgorithm(horizon)
		a := Run(alg, in)
		b := RunMessagePassing(alg, in)
		for v := range a.Verdicts {
			if a.Verdicts[v] != b.Verdicts[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRounds(t *testing.T) {
	if Rounds(viewCodeAlgorithm(3)) != 3 {
		t.Error("Rounds should report the horizon")
	}
}

func abs(x int64) int64 {
	if x < 0 {
		if x == -1<<63 {
			return 1<<63 - 1
		}
		return -x
	}
	return x
}

func TestRunMessagePassingStats(t *testing.T) {
	alg := viewCodeAlgorithm(2)
	g := graph.Cycle(6)
	l := graph.UniformlyLabeled(g, "c")
	in := graph.NewInstance(l, ids.Sequential(6))
	_, stats := RunMessagePassingStats(alg, in)
	if stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", stats.Rounds)
	}
	// Each round sends one message per directed edge: 2 rounds x 12.
	if stats.Messages != 24 {
		t.Errorf("messages = %d, want 24", stats.Messages)
	}
	// Round 1 snapshots know 1 node each (12 units); round 2 snapshots know
	// 3 nodes each (36 units).
	if stats.KnowledgeUnits != 48 {
		t.Errorf("knowledge units = %d, want 48", stats.KnowledgeUnits)
	}
	// Horizon 0: no communication at all.
	zero := viewCodeAlgorithm(0)
	_, stats = RunMessagePassingStats(zero, in)
	if stats.Messages != 0 || stats.KnowledgeUnits != 0 {
		t.Errorf("horizon-0 stats = %+v, want zero traffic", stats)
	}
}
