package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func rec(i int, verdict bool) Record {
	code := make([]byte, 16)
	binary.LittleEndian.PutUint64(code, uint64(i))
	copy(code[8:], "storecov")
	return Record{Decider: "test-decider", Horizon: 2, Code: code, Verdict: verdict}
}

func mustOpen(t *testing.T, path string, opts Options) *Store {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRoundTrip: records put, flushed, and reopened come back verbatim.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s := mustOpen(t, path, Options{})
	const n = 100
	for i := 0; i < n; i++ {
		if !s.Put(rec(i, i%3 == 0)) {
			t.Fatalf("Put(%d) rejected", i)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, path, Options{})
	st := s2.Stats()
	if st.Recovered != n || st.Records != n {
		t.Fatalf("recovered %d records (live %d), want %d", st.Recovered, st.Records, n)
	}
	if st.TruncatedBytes != 0 || st.SkippedSchema != 0 {
		t.Fatalf("clean log reported damage: %+v", st)
	}
	for i := 0; i < n; i++ {
		want := rec(i, i%3 == 0)
		v, ok := s2.Get(want.Decider, want.Horizon, want.Code)
		if !ok || v != want.Verdict {
			t.Fatalf("record %d: got (%v, %v), want (%v, true)", i, v, ok, want.Verdict)
		}
	}
}

// TestPutDedup: a second Put of the same key is a no-op.
func TestPutDedup(t *testing.T) {
	s := mustOpen(t, filepath.Join(t.TempDir(), "v.log"), Options{})
	if !s.Put(rec(1, true)) {
		t.Fatal("first Put rejected")
	}
	if s.Put(rec(1, true)) {
		t.Fatal("duplicate Put accepted")
	}
	if st := s.Stats(); st.Records != 1 {
		t.Fatalf("live records = %d, want 1", st.Records)
	}
}

// TestQueueDropNeverBlocks: with the flusher wedged behind a held write, a
// burst past the queue depth returns promptly with drops counted — the
// eval hot path must never block on persistence.
func TestQueueDropNeverBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := mustOpen(t, path, Options{QueueDepth: 8})
	// Wedge the flusher behind the test gate, then flood the queue.
	gate := make(chan struct{})
	s.mu.Lock()
	s.testGate = gate
	s.mu.Unlock()
	s.Put(rec(0, true)) // wakes the flusher, which parks on the gate
	time.Sleep(20 * time.Millisecond)
	done := make(chan int, 1)
	go func() {
		dropped := 0
		for i := 1; i <= 64; i++ {
			if !s.Put(rec(i, true)) {
				dropped++
			}
		}
		done <- dropped
	}()
	select {
	case dropped := <-done:
		if dropped == 0 {
			t.Error("flooding a wedged queue dropped nothing")
		}
	case <-time.After(5 * time.Second):
		t.Error("Put blocked on a wedged flusher")
	}
	close(gate)
	if st := s.Stats(); st.QueueDrops == 0 {
		t.Fatalf("drops not counted: %+v", st)
	}
}

// TestDroppedRecordRetriable: a record dropped on queue overflow is unmarked
// from the dedup map, so a later Put (with queue space) persists it.
func TestDroppedRecordRetriable(t *testing.T) {
	s := mustOpen(t, filepath.Join(t.TempDir(), "v.log"), Options{QueueDepth: 4})
	gate := make(chan struct{})
	s.mu.Lock()
	s.testGate = gate
	s.mu.Unlock()
	s.Put(rec(0, true))
	time.Sleep(20 * time.Millisecond)
	var victim bool
	for i := 1; i <= 32; i++ {
		if !s.Put(rec(i, true)) {
			victim = true
		}
	}
	close(gate)
	if !victim {
		t.Skip("queue never overflowed; cannot exercise retry")
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Find a dropped record (absent from known) and retry it.
	retried := false
	for i := 1; i <= 32; i++ {
		r := rec(i, true)
		if _, ok := s.Get(r.Decider, r.Horizon, r.Code); !ok {
			if !s.Put(r) {
				t.Fatalf("retry of dropped record %d rejected", i)
			}
			retried = true
			break
		}
	}
	if !retried {
		t.Fatal("overflow reported but every record is known")
	}
}

// corruptAt opens the log and applies fn to its bytes, writing them back.
func corruptAt(t *testing.T, path string, fn func(data []byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatalf("write corrupted log: %v", err)
	}
}

// writeLog writes n records and closes the store, returning the frame
// offsets of each record for byte surgery.
func writeLog(t *testing.T, path string, n int) []int {
	t.Helper()
	s := mustOpen(t, path, Options{})
	offsets := make([]int, n)
	off := 0
	for i := 0; i < n; i++ {
		offsets[i] = off
		r := rec(i, true)
		off += frameHeaderBytes + 12 + len(r.Decider) + len(r.Code)
		if !s.Put(r) {
			t.Fatalf("Put(%d) rejected", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if fi.Size() != int64(off) {
		t.Fatalf("log size %d, want %d — frame math drifted", fi.Size(), off)
	}
	return offsets
}

// TestRecoveryTruncatesTornTail: a log cut mid-record recovers the complete
// prefix and truncates the torn bytes.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	offsets := writeLog(t, path, 10)
	// Tear the last record in half.
	cut := offsets[9] + frameHeaderBytes + 3
	corruptAt(t, path, func(data []byte) []byte { return data[:cut] })

	s := mustOpen(t, path, Options{})
	st := s.Stats()
	if st.Recovered != 9 {
		t.Fatalf("recovered %d, want 9", st.Recovered)
	}
	if st.TruncatedBytes == 0 {
		t.Fatal("torn tail not counted")
	}
	fi, _ := os.Stat(path)
	if fi.Size() != int64(offsets[9]) {
		t.Fatalf("file not truncated at last good record: size %d, want %d", fi.Size(), offsets[9])
	}
	// The 9 intact records are all served; the torn one is not.
	for i := 0; i < 9; i++ {
		r := rec(i, true)
		if _, ok := s.Get(r.Decider, r.Horizon, r.Code); !ok {
			t.Fatalf("intact record %d lost", i)
		}
	}
	r9 := rec(9, true)
	if _, ok := s.Get(r9.Decider, r9.Horizon, r9.Code); ok {
		t.Fatal("torn record served")
	}
}

// TestRecoveryStopsAtFlippedBit: a checksum-corrupt record in the middle
// truncates it and everything after — once a frame fails its CRC the append
// offset is untrustworthy.
func TestRecoveryStopsAtFlippedBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	offsets := writeLog(t, path, 10)
	corruptAt(t, path, func(data []byte) []byte {
		data[offsets[4]+frameHeaderBytes+2] ^= 0x40 // flip a payload bit of record 4
		return data
	})

	s := mustOpen(t, path, Options{})
	st := s.Stats()
	if st.Recovered != 4 {
		t.Fatalf("recovered %d, want 4 (prefix before the flipped bit)", st.Recovered)
	}
	if st.TruncatedBytes == 0 {
		t.Fatal("corrupt region not counted")
	}
	r7 := rec(7, true)
	if _, ok := s.Get(r7.Decider, r7.Horizon, r7.Code); ok {
		t.Fatal("record after corruption served")
	}
}

// TestRecoveryImplausibleLength: a corrupt length prefix (gigantic) is
// treated as corruption, not an allocation request.
func TestRecoveryImplausibleLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	offsets := writeLog(t, path, 6)
	corruptAt(t, path, func(data []byte) []byte {
		binary.LittleEndian.PutUint32(data[offsets[3]:], 0xfffffff0)
		return data
	})
	s := mustOpen(t, path, Options{})
	if st := s.Stats(); st.Recovered != 3 {
		t.Fatalf("recovered %d, want 3", st.Recovered)
	}
}

// TestRecoverySkipsUnknownSchema: a well-framed record with a future schema
// version is skipped and counted; records after it still load.
func TestRecoverySkipsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	offsets := writeLog(t, path, 8)
	corruptAt(t, path, func(data []byte) []byte {
		// Rewrite record 2's schema byte to a future version and fix the
		// checksum so the frame stays intact.
		start := offsets[2]
		payloadLen := int(binary.LittleEndian.Uint32(data[start:]))
		payload := data[start+frameHeaderBytes : start+frameHeaderBytes+payloadLen]
		payload[0] = SchemaVersion + 9
		binary.LittleEndian.PutUint32(data[start+4:], crc32.Checksum(payload, castagnoli))
		return data
	})
	s := mustOpen(t, path, Options{})
	st := s.Stats()
	if st.Recovered != 7 {
		t.Fatalf("recovered %d, want 7 (one skipped)", st.Recovered)
	}
	if st.SkippedSchema != 1 {
		t.Fatalf("SkippedSchema = %d, want 1", st.SkippedSchema)
	}
	if st.TruncatedBytes != 0 {
		t.Fatal("schema skip must not truncate")
	}
	// Records after the skipped one are intact.
	r7 := rec(7, true)
	if _, ok := s.Get(r7.Decider, r7.Horizon, r7.Code); !ok {
		t.Fatal("record after schema skip lost")
	}
}

// TestCompactDropsDeadBytes: compaction rewrites the log to live records
// only, atomically, and the store keeps working after.
func TestCompactDropsDeadBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := mustOpen(t, path, Options{})
	for i := 0; i < 50; i++ {
		s.Put(rec(i, true))
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Store remains usable.
	if !s.Put(rec(100, false)) {
		t.Fatal("Put after Compact rejected")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := mustOpen(t, path, Options{})
	st := s2.Stats()
	if st.Recovered != 51 {
		t.Fatalf("recovered %d after compact, want 51", st.Recovered)
	}
	if st.TruncatedBytes != 0 {
		t.Fatalf("compacted log reported damage: %+v", st)
	}
}

// TestForEachInvertsKeys: ForEach yields every record with fields intact —
// the warm-up path the decided server uses at startup.
func TestForEachInvertsKeys(t *testing.T) {
	s := mustOpen(t, filepath.Join(t.TempDir(), "v.log"), Options{})
	want := map[string]bool{}
	for i := 0; i < 20; i++ {
		r := rec(i, i%2 == 0)
		s.Put(r)
		want[fmt.Sprintf("%s/%d/%x", r.Decider, r.Horizon, r.Code)] = r.Verdict
	}
	got := map[string]bool{}
	s.ForEach(func(r Record) {
		got[fmt.Sprintf("%s/%d/%x", r.Decider, r.Horizon, r.Code)] = r.Verdict
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach yielded %d records, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("record %s: verdict %v, want %v", k, got[k], v)
		}
	}
}

// TestConcurrentPutFlush hammers Put from several goroutines while Flush
// and Stats run concurrently — run under -race.
func TestConcurrentPutFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := mustOpen(t, path, Options{QueueDepth: 256})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Put(rec(g*1000+i, i%2 == 0))
				if i%100 == 0 {
					s.Flush()
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := mustOpen(t, path, Options{})
	st := s2.Stats()
	if st.TruncatedBytes != 0 {
		t.Fatalf("concurrent churn tore the log: %+v", st)
	}
	// Every record that survived dedup+drops must read back verbatim.
	if st.Recovered == 0 {
		t.Fatal("nothing recovered")
	}
}

// --- SIGKILL chaos -------------------------------------------------------

// chaosChildEnv guards the re-exec child body: when set, TestMain-less test
// binaries run the child writer instead of the test suite.
const chaosChildEnv = "STORE_CHAOS_CHILD"

// TestChaosKillMidWrite re-execs the test binary as a child that appends
// records 0,1,2,... with per-batch fsync, SIGKILLs it mid-stream, then
// reopens the log and verifies the recovered prefix: records must be a
// contiguous prefix of the written sequence, every one intact. Run a few
// rounds to vary where the kill lands.
func TestChaosKillMidWrite(t *testing.T) {
	if os.Getenv(chaosChildEnv) != "" {
		chaosChild(os.Getenv(chaosChildEnv))
		os.Exit(0)
	}
	if testing.Short() {
		t.Skip("re-exec chaos test skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	for round := 0; round < 3; round++ {
		path := filepath.Join(t.TempDir(), "chaos.log")
		cmd := exec.Command(bin, "-test.run", "TestChaosKillMidWrite")
		cmd.Env = append(os.Environ(), chaosChildEnv+"="+path)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatalf("round %d: start child: %v", round, err)
		}
		// Let the child write for a while, then kill it without warning.
		time.Sleep(time.Duration(30+round*40) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		s, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("round %d: reopen after kill: %v (child output: %s)", round, err, out.String())
		}
		st := s.Stats()
		// Every recovered record must be rec(i, i%2==0) for a contiguous
		// prefix 0..Recovered-1: the child writes in order with SyncEvery,
		// so recovery may lose a tail but never an interior record and
		// never invent or mangle one.
		for i := 0; i < st.Recovered; i++ {
			want := rec(i, i%2 == 0)
			v, ok := s.Get(want.Decider, want.Horizon, want.Code)
			if !ok {
				t.Fatalf("round %d: hole at record %d of %d recovered", round, i, st.Recovered)
			}
			if v != want.Verdict {
				t.Fatalf("round %d: record %d verdict corrupted", round, i)
			}
		}
		if st.Records != st.Recovered {
			t.Fatalf("round %d: %d live vs %d recovered — phantom records", round, st.Records, st.Recovered)
		}
		s.Close()
		t.Logf("round %d: recovered %d records, truncated %d bytes", round, st.Recovered, st.TruncatedBytes)
	}
}

// chaosChild writes records 0,1,2,... as fast as the flusher syncs them,
// until killed. SyncEvery keeps the durable prefix close behind the writes.
func chaosChild(path string) {
	s, err := Open(path, Options{QueueDepth: 4, SyncEvery: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		// Put with retry: the tiny queue forces constant flusher handoff so
		// the kill lands mid-write with high probability.
		for !s.Put(rec(i, i%2 == 0)) {
			time.Sleep(50 * time.Microsecond)
		}
	}
}
