// Package store implements the crash-safe persistent verdict store behind
// the decided service: an append-only record log keyed by the engine's
// (decider, horizon, canonical code) triple. Every record is length-prefixed
// and CRC32C-checksummed so a torn write — the tail a SIGKILL or power cut
// leaves behind — is detected on open and truncated away rather than served.
//
// The store is deliberately engine-free: it deals in Records of raw bytes and
// a boolean verdict. The decided server wires it to the engine's ViewCache
// via the cache's persist hook (write-behind) and Insert warm-up (recovery).
//
// Wire format, little-endian throughout:
//
//	record  := [4B payloadLen][4B CRC32C(payload)][payload]
//	payload := [1B schema][1B verdict][4B horizon][2B deciderLen][decider]
//	           [4B codeLen][code]
//
// Recovery scans the log from the start, verifying each frame. The scan
// stops — and the file is truncated — at the first record whose frame is
// torn (short) or whose checksum fails: everything after a torn record is
// untrustworthy because the append offset itself is in doubt. A record that
// frames and checksums correctly but carries an unknown schema version is
// skipped and counted instead: the bytes are intact, only the encoding is
// from the future, so later records remain trustworthy.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// SchemaVersion is the record-payload encoding version written by this
// package. Open skips (never serves, never truncates at) well-framed records
// with a different version.
const SchemaVersion = 1

// frameHeaderBytes is the fixed per-record framing overhead: 4-byte payload
// length plus 4-byte CRC32C of the payload.
const frameHeaderBytes = 8

// maxPayloadBytes bounds a single record's payload. Canonical codes are a
// few dozen bytes in practice; the cap exists so a corrupt length prefix
// cannot drive recovery (or an attacker-controlled log) into a giant
// allocation — an implausible length is treated as corruption.
const maxPayloadBytes = 1 << 20

// castagnoli is the CRC32C table; Castagnoli rather than IEEE because it is
// the polynomial with hardware support on amd64/arm64 — checksumming must be
// cheap enough to sit on the persistence path of every verdict.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one persisted verdict: the engine's (decider, horizon, code)
// cache key plus the boolean verdict it resolved to.
type Record struct {
	// Decider names the decider that produced the verdict.
	Decider string
	// Horizon is the view radius the decider ran at.
	Horizon int
	// Code is the canonical view code the verdict was computed for.
	Code []byte
	// Verdict is true for Yes, false for No.
	Verdict bool
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Records is the number of live records (recovered + appended, after
	// in-memory dedup).
	Records int
	// Appended counts records durably handed to the flusher since Open.
	Appended int64
	// QueueDrops counts Put calls dropped because the write-behind queue was
	// full. Dropped verdicts are recomputed on the next cold start — a
	// throughput hit, never a correctness hit.
	QueueDrops int64
	// Recovered is the number of valid records read back at Open.
	Recovered int
	// SkippedSchema counts well-framed records dropped at Open for carrying
	// an unknown schema version.
	SkippedSchema int
	// TruncatedBytes is the number of trailing bytes cut at Open because the
	// first torn or checksum-corrupt record began there.
	TruncatedBytes int64
	// Flushes counts explicit and batch fsync cycles completed.
	Flushes int64
}

// Options configures Open.
type Options struct {
	// QueueDepth bounds the write-behind queue. 0 means a default of 1024.
	// When the queue is full, Put drops the record and counts a QueueDrop
	// instead of blocking the eval hot path.
	QueueDepth int
	// SyncEvery makes the flusher fsync after every batch it drains when
	// true. When false, data still reaches the kernel on every batch; fsync
	// happens on Flush, Compact, and Close. Chaos tests run with true.
	SyncEvery bool
}

// Store is an append-only, crash-safe verdict log with a write-behind
// flusher. All methods are safe for concurrent use.
type Store struct {
	path string
	opts Options

	mu    sync.Mutex      // guards known, stats, testGate
	known map[string]bool // key() → verdict, in-memory dedup + warm-up source
	stats Stats

	// wmu serialises every use of file (append, sync, compaction swap,
	// close). It is separate from mu so Put — which only touches the dedup
	// map — never waits behind a disk write. Compact acquires wmu before mu;
	// no other path holds both at once.
	wmu  sync.Mutex
	file *os.File

	// testGate, when set (under mu) by tests, stalls the flusher before each
	// batch write so overflow behaviour can be exercised deterministically.
	testGate chan struct{}

	queue    chan Record
	flushReq chan chan error
	done     chan struct{}
	closed   chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// key builds the dedup map key. Horizon and decider-length are encoded so
// ("ab", code) and ("a", "b"+code) cannot collide.
func key(r Record) string {
	var pre [10]byte
	binary.LittleEndian.PutUint32(pre[0:], uint32(r.Horizon))
	binary.LittleEndian.PutUint16(pre[4:], uint16(len(r.Decider)))
	binary.LittleEndian.PutUint32(pre[6:], uint32(len(r.Code)))
	return string(pre[:]) + r.Decider + string(r.Code)
}

// encode appends the framed wire encoding of r to buf and returns the
// extended slice.
func encode(buf []byte, r Record) []byte {
	payloadLen := 1 + 1 + 4 + 2 + len(r.Decider) + 4 + len(r.Code)
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(payloadLen))
	start := len(buf)
	buf = append(buf, hdr[:]...)
	buf = append(buf, SchemaVersion)
	if r.Verdict {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(r.Horizon))
	buf = append(buf, u32[:]...)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(r.Decider)))
	buf = append(buf, u16[:]...)
	buf = append(buf, r.Decider...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Code)))
	buf = append(buf, u32[:]...)
	buf = append(buf, r.Code...)
	sum := crc32.Checksum(buf[start+frameHeaderBytes:], castagnoli)
	binary.LittleEndian.PutUint32(buf[start+4:], sum)
	return buf
}

// errSchema marks a well-framed payload with an unknown schema version; the
// recovery scan skips such records instead of truncating.
var errSchema = errors.New("store: unknown schema version")

// decodePayload parses a checksummed payload into a Record.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 12 {
		return Record{}, fmt.Errorf("store: payload too short: %d bytes", len(p))
	}
	if p[0] != SchemaVersion {
		return Record{}, fmt.Errorf("%w: %d", errSchema, p[0])
	}
	r := Record{Verdict: p[1] != 0}
	r.Horizon = int(binary.LittleEndian.Uint32(p[2:]))
	dl := int(binary.LittleEndian.Uint16(p[6:]))
	if len(p) < 12+dl {
		return Record{}, fmt.Errorf("store: decider length %d overruns payload", dl)
	}
	r.Decider = string(p[8 : 8+dl])
	cl := int(binary.LittleEndian.Uint32(p[8+dl:]))
	if len(p) != 12+dl+cl {
		return Record{}, fmt.Errorf("store: code length %d mismatches payload", cl)
	}
	r.Code = append([]byte(nil), p[12+dl:]...)
	return r, nil
}

// Open opens (creating if absent) the verdict log at path, runs the recovery
// scan, truncates any torn tail, and starts the write-behind flusher.
func Open(path string, opts Options) (*Store, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	s := &Store{
		path:     path,
		opts:     opts,
		file:     f,
		known:    make(map[string]bool),
		queue:    make(chan Record, opts.QueueDepth),
		flushReq: make(chan chan error, 1),
		done:     make(chan struct{}),
		closed:   make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	go s.flusher()
	return s, nil
}

// recover scans the log, loads valid records into the dedup map, and
// truncates the file at the first torn or checksum-corrupt record.
func (s *Store) recover() error {
	data, err := io.ReadAll(s.file)
	if err != nil {
		return fmt.Errorf("store: recovery read: %w", err)
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < frameHeaderBytes {
			break // torn header
		}
		payloadLen := int(binary.LittleEndian.Uint32(rest[0:]))
		if payloadLen > maxPayloadBytes || payloadLen < 12 {
			break // implausible length prefix: corrupt
		}
		if len(rest) < frameHeaderBytes+payloadLen {
			break // torn payload
		}
		wantSum := binary.LittleEndian.Uint32(rest[4:])
		payload := rest[frameHeaderBytes : frameHeaderBytes+payloadLen]
		if crc32.Checksum(payload, castagnoli) != wantSum {
			break // flipped bits: corrupt
		}
		r, derr := decodePayload(payload)
		if derr != nil {
			if errors.Is(derr, errSchema) {
				// Intact frame from a future encoder: skip, keep scanning.
				s.stats.SkippedSchema++
				off += frameHeaderBytes + payloadLen
				continue
			}
			break // internal lengths disagree with the frame: corrupt
		}
		s.known[key(r)] = r.Verdict
		s.stats.Recovered++
		off += frameHeaderBytes + payloadLen
	}
	s.stats.Records = len(s.known)
	if off < len(data) {
		s.stats.TruncatedBytes = int64(len(data) - off)
		if err := s.file.Truncate(int64(off)); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	if _, err := s.file.Seek(int64(off), io.SeekStart); err != nil {
		return fmt.Errorf("store: seek append offset: %w", err)
	}
	return nil
}

// Put enqueues a record for asynchronous persistence. It never blocks: a
// full queue drops the record (counted in QueueDrops), and a record already
// known (same key) is deduplicated away. The returned bool reports whether
// the record was accepted for persistence.
func (s *Store) Put(r Record) bool {
	k := key(r)
	s.mu.Lock()
	if _, dup := s.known[k]; dup {
		s.mu.Unlock()
		return false
	}
	// Mark known before enqueueing so a concurrent Put of the same key
	// dedups against this one; unmark on drop so it can retry later.
	s.known[k] = r.Verdict
	s.stats.Records = len(s.known)
	s.mu.Unlock()

	select {
	case s.queue <- r:
		return true
	default:
	}
	s.mu.Lock()
	delete(s.known, k)
	s.stats.Records = len(s.known)
	s.stats.QueueDrops++
	s.mu.Unlock()
	return false
}

// Get reports the verdict stored for the key of r (its Verdict field is
// ignored) and whether one exists.
func (s *Store) Get(decider string, horizon int, code []byte) (verdict, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.known[key(Record{Decider: decider, Horizon: horizon, Code: code})]
	return v, ok
}

// ForEach calls fn for every live record key currently known, in no
// particular order. It is intended for cache warm-up at startup. The code
// slice passed to fn must not be retained.
func (s *Store) ForEach(fn func(r Record)) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.known))
	verdicts := make([]bool, 0, len(s.known))
	for k, v := range s.known {
		keys = append(keys, k)
		verdicts = append(verdicts, v)
	}
	s.mu.Unlock()
	for i, k := range keys {
		r, err := recordFromKey(k)
		if err != nil {
			continue
		}
		r.Verdict = verdicts[i]
		fn(r)
	}
}

// recordFromKey inverts key(): the dedup key embeds every field but the
// verdict.
func recordFromKey(k string) (Record, error) {
	if len(k) < 10 {
		return Record{}, errors.New("store: malformed dedup key")
	}
	var r Record
	r.Horizon = int(binary.LittleEndian.Uint32([]byte(k[0:4])))
	dl := int(binary.LittleEndian.Uint16([]byte(k[4:6])))
	cl := int(binary.LittleEndian.Uint32([]byte(k[6:10])))
	if len(k) != 10+dl+cl {
		return Record{}, errors.New("store: malformed dedup key lengths")
	}
	r.Decider = k[10 : 10+dl]
	r.Code = []byte(k[10+dl:])
	return r, nil
}

// flusher is the write-behind goroutine: it drains the queue in batches,
// writes them with a single syscall, and fsyncs per Options.SyncEvery or on
// explicit Flush requests.
func (s *Store) flusher() {
	defer close(s.closed)
	buf := make([]byte, 0, 4096)
	for {
		select {
		case r := <-s.queue:
			buf = s.writeBatch(buf[:0], r)
		case ack := <-s.flushReq:
			ack <- s.drainAndSync(buf[:0])
		case <-s.done:
			// Final drain: persist everything still queued, then sync.
			s.drainAndSync(buf[:0])
			return
		}
	}
}

// writeBatch encodes first plus everything else currently queued and writes
// the batch in one call.
func (s *Store) writeBatch(buf []byte, first Record) []byte {
	s.mu.Lock()
	gate := s.testGate
	s.mu.Unlock()
	if gate != nil {
		<-gate
	}
	buf = encode(buf, first)
	n := 1
	for more := true; more; {
		select {
		case r := <-s.queue:
			buf = encode(buf, r)
			n++
		default:
			more = false
		}
	}
	s.wmu.Lock()
	if s.file == nil {
		s.wmu.Unlock()
		return buf
	}
	_, werr := s.file.Write(buf)
	synced := false
	if werr == nil && s.opts.SyncEvery {
		synced = s.file.Sync() == nil
	}
	s.wmu.Unlock()
	if werr != nil {
		// A failed append leaves the log merely shorter — recovery semantics
		// make that safe. Count the records as never appended.
		return buf
	}
	s.mu.Lock()
	s.stats.Appended += int64(n)
	if synced {
		s.stats.Flushes++
	}
	s.mu.Unlock()
	return buf
}

// drainAndSync empties the queue, writes what it found, and fsyncs.
func (s *Store) drainAndSync(buf []byte) error {
	n := 0
	for more := true; more; {
		select {
		case r := <-s.queue:
			buf = encode(buf, r)
			n++
		default:
			more = false
		}
	}
	s.wmu.Lock()
	if s.file == nil {
		s.wmu.Unlock()
		return errors.New("store: closed")
	}
	if n > 0 {
		if _, err := s.file.Write(buf); err != nil {
			s.wmu.Unlock()
			return fmt.Errorf("store: flush write: %w", err)
		}
	}
	serr := s.file.Sync()
	s.wmu.Unlock()
	if serr != nil {
		return fmt.Errorf("store: fsync: %w", serr)
	}
	s.mu.Lock()
	s.stats.Appended += int64(n)
	s.stats.Flushes++
	s.mu.Unlock()
	return nil
}

// Flush blocks until every record enqueued before the call is written and
// fsynced.
func (s *Store) Flush() error {
	ack := make(chan error, 1)
	select {
	case s.flushReq <- ack:
		select {
		case err := <-ack:
			return err
		case <-s.closed:
			return errors.New("store: closed during flush")
		}
	case <-s.closed:
		return errors.New("store: closed")
	}
}

// Compact rewrites the log to contain exactly the live (deduplicated)
// records, via a temp file and atomic rename, reclaiming space from dropped
// duplicates and skipped-schema records. The store remains usable after.
func (s *Store) Compact() error {
	if err := s.Flush(); err != nil {
		return err
	}
	// Holding wmu stalls flusher appends for the duration: any record enqueued
	// after the snapshot below waits and lands in the new file. The snapshot
	// itself covers every accepted Put — known is marked before enqueue — so
	// no record can slip into the old file and miss the rewrite.
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.file == nil {
		return errors.New("store: closed")
	}
	s.mu.Lock()
	buf := make([]byte, 0, 4096)
	live := make([]Record, 0, len(s.known))
	for k, v := range s.known {
		r, kerr := recordFromKey(k)
		if kerr != nil {
			continue
		}
		r.Verdict = v
		live = append(live, r)
	}
	s.mu.Unlock()
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact open: %w", err)
	}
	for _, r := range live {
		buf = encode(buf, r)
		if len(buf) >= 1<<16 {
			if _, err := tmp.Write(buf); err != nil {
				tmp.Close()
				os.Remove(tmpPath)
				return fmt.Errorf("store: compact write: %w", err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact sync: %w", err)
	}
	// The rename is the commit point: either the old complete log or the new
	// complete log exists, never a partial mixture.
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact rename: %w", err)
	}
	// Durably record the rename itself.
	if dir, derr := os.Open(filepath.Dir(s.path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	old := s.file
	s.file = tmp
	old.Close()
	if _, err := tmp.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: compact seek: %w", err)
	}
	s.mu.Lock()
	s.stats.SkippedSchema = 0
	s.stats.TruncatedBytes = 0
	s.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close drains the queue, fsyncs, and closes the log. Safe to call more
// than once.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		<-s.closed
		s.wmu.Lock()
		if s.file != nil {
			s.closeErr = s.file.Close()
			s.file = nil
		}
		s.wmu.Unlock()
	})
	return s.closeErr
}
