package props

import (
	"testing"

	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/local"
)

func TestColoringSuiteAgainstProperty(t *testing.T) {
	if err := ColoringSuite().Check(ThreeColoring()); err != nil {
		t.Fatal(err)
	}
}

func TestColoringVerifierDecides(t *testing.T) {
	rep := decide.VerifyLDStar(ThreeColoringVerifier(), ColoringSuite())
	if !rep.OK() {
		t.Fatalf("3-colouring verifier failed: %s\n%v", rep, rep.Failures)
	}
}

func TestMISSuiteAgainstProperty(t *testing.T) {
	if err := MISSuite().Check(MIS()); err != nil {
		t.Fatal(err)
	}
}

func TestMISVerifierDecides(t *testing.T) {
	rep := decide.VerifyLDStar(MISVerifier(), MISSuite())
	if !rep.OK() {
		t.Fatalf("MIS verifier failed: %s\n%v", rep, rep.Failures)
	}
}

func TestMISRejectsBadAlphabet(t *testing.T) {
	l := graph.NewLabeled(graph.Path(2), []graph.Label{"1", "X"})
	if MIS().Contains(l) {
		t.Error("bad alphabet accepted by property")
	}
	if local.RunOblivious(MISVerifier(), l).Accepted {
		t.Error("bad alphabet accepted by verifier")
	}
}

func TestBoundedDegree(t *testing.T) {
	p := BoundedDegree(2)
	if !p.Contains(graph.UniformlyLabeled(graph.Cycle(5), "")) {
		t.Error("cycle rejected")
	}
	if p.Contains(graph.UniformlyLabeled(graph.Star(5), "")) {
		t.Error("star accepted")
	}
	v := BoundedDegreeVerifier(2)
	if !local.RunOblivious(v, graph.UniformlyLabeled(graph.Path(5), "")).Accepted {
		t.Error("path rejected by verifier")
	}
	if local.RunOblivious(v, graph.UniformlyLabeled(graph.Star(4), "")).Accepted {
		t.Error("star accepted by verifier")
	}
}

func TestTriangleFree(t *testing.T) {
	p := TriangleFree()
	if !p.Contains(graph.UniformlyLabeled(graph.Cycle(5), "")) {
		t.Error("C5 rejected")
	}
	if p.Contains(graph.UniformlyLabeled(graph.Complete(4), "")) {
		t.Error("K4 accepted")
	}
	v := TriangleFreeVerifier()
	if !local.RunOblivious(v, graph.UniformlyLabeled(graph.Grid(3, 3), "")).Accepted {
		t.Error("grid rejected by verifier")
	}
	if local.RunOblivious(v, graph.UniformlyLabeled(graph.Cycle(3), "")).Accepted {
		t.Error("triangle accepted by verifier")
	}
}

// Verifier-property agreement on random instances: the local verifier
// accepts exactly when the property holds (these properties are genuinely
// locally checkable, unlike the paper's constructions).
func TestVerifierPropertyAgreementRandom(t *testing.T) {
	colorProp, colorVer := ThreeColoring(), ThreeColoringVerifier()
	misProp, misVer := MIS(), MISVerifier()
	for seed := int64(0); seed < 40; seed++ {
		g := graph.Random(6, 0.4, seed)
		colors := graph.RandomLabels(g, []graph.Label{"0", "1", "2"}, seed+100)
		if got, want := local.RunOblivious(colorVer, colors).Accepted, colorProp.Contains(colors); got != want {
			t.Fatalf("seed %d: colouring verifier=%v property=%v", seed, got, want)
		}
		mis := graph.RandomLabels(g, []graph.Label{"0", "1"}, seed+200)
		if got, want := local.RunOblivious(misVer, mis).Accepted, misProp.Contains(mis); got != want {
			t.Fatalf("seed %d: MIS verifier=%v property=%v", seed, got, want)
		}
	}
}

func TestParentPointers(t *testing.T) {
	p := ParentPointers()
	// Path 0-1-2 rooted at 0: labels point to the neighbour toward the root.
	good := graph.NewLabeled(graph.Path(3), []graph.Label{"root", "0", "1"})
	if !p.Contains(good) {
		t.Error("valid parent pointers rejected")
	}
	noRoot := graph.NewLabeled(graph.Path(3), []graph.Label{"1", "0", "1"})
	if p.Contains(noRoot) {
		t.Error("rootless pointers accepted")
	}
	twoRoots := graph.NewLabeled(graph.Path(3), []graph.Label{"root", "0", "root"})
	if p.Contains(twoRoots) {
		t.Error("two roots accepted")
	}
	nonNeighbor := graph.NewLabeled(graph.Path(3), []graph.Label{"root", "2", "1"})
	// Node 1's pointer names node 2 which IS a neighbour; make it a true
	// non-neighbour instead.
	nonNeighbor.Labels[1] = "9"
	if p.Contains(nonNeighbor) {
		t.Error("dangling pointer accepted")
	}
}

func TestLeaderUniqueSuite(t *testing.T) {
	s := LeaderUniqueSuite([]int{4, 6})
	if len(s.Yes) != 2 || len(s.No) != 4 {
		t.Fatalf("suite sizes %d/%d", len(s.Yes), len(s.No))
	}
	// No horizon-t oblivious (or even ID-using) algorithm can decide this
	// without global information; verify at least that the instances differ
	// only globally: yes and zero-leader instances share all views far from
	// the leader.
	yes, no := s.Yes[1], s.No[2] // n=6 with leader, n=6 without
	yesViews := graph.ObliviousViewSet(yes, 1)
	noViews := graph.ObliviousViewSet(no, 1)
	shared := 0
	for code := range noViews {
		if _, ok := yesViews[code]; ok {
			shared++
		}
	}
	if shared == 0 {
		t.Error("expected view overlap between leader and no-leader cycles")
	}
}

func TestForestCertSuiteAgainstProperty(t *testing.T) {
	if err := ForestCertSuite([]int{3, 6, 9}).Check(ForestCert()); err != nil {
		t.Fatal(err)
	}
}

func TestForestCertVerifierDecides(t *testing.T) {
	rep := decide.VerifyLDStar(ForestCertVerifier(), ForestCertSuite([]int{3, 6, 9}))
	if !rep.OK() {
		t.Fatalf("forest-cert verifier failed: %s\n%v", rep, rep.Failures)
	}
}

// TestCertifyForestOnForests pins that CertifyForest yields a certificate the
// property and the verifier both accept exactly on forests — including the
// global case the plain Forest property needs a full traversal for: a big
// cycle is rejected from radius-1 views alone once certificates are present.
func TestCertifyForestOnForests(t *testing.T) {
	p, v := ForestCert(), ForestCertVerifier()
	for _, g := range []*graph.Graph{
		graph.Path(50), graph.Star(20), graph.CompleteBinaryTree(5),
	} {
		l := graph.NewLabeled(g, CertifyForest(g))
		if !p.Contains(l) || !local.RunOblivious(v, l).Accepted {
			t.Fatalf("certified forest (n=%d) rejected", g.N())
		}
	}
	for _, n := range []int{3, 4, 999, 1000} {
		cycle := graph.Cycle(n)
		l := graph.NewLabeled(cycle, CertifyForest(cycle))
		if p.Contains(l) || local.RunOblivious(v, l).Accepted {
			t.Fatalf("C%d certificate accepted", n)
		}
	}
}

// Verifier-property agreement on random labelled instances: ForestCert is
// genuinely locally checkable, so verifier and property must coincide on
// arbitrary (mostly invalid) inputs too.
func TestForestCertAgreementRandom(t *testing.T) {
	p, v := ForestCert(), ForestCertVerifier()
	for seed := int64(0); seed < 40; seed++ {
		g := graph.Random(8, 0.3, seed)
		l := graph.RandomLabels(g, []graph.Label{"0", "1", "2", "zz"}, seed+300)
		if got, want := local.RunOblivious(v, l).Accepted, p.Contains(l); got != want {
			t.Fatalf("seed %d: forest-cert verifier=%v property=%v", seed, got, want)
		}
	}
}

func TestForestSuite(t *testing.T) {
	p := Forest()
	if err := ForestSuite([]int{3, 6, 9}).Check(p); err != nil {
		t.Fatal(err)
	}
	// The property is global: a big cycle must be rejected even though every
	// ball of bounded radius looks path-like.
	if p.Contains(graph.UniformlyLabeled(graph.Cycle(1000), "")) {
		t.Error("cycle accepted as forest")
	}
	if !p.Contains(graph.UniformlyLabeled(graph.Path(1000), "")) {
		t.Error("path rejected as forest")
	}
}
