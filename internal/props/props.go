// Package props provides the classic labelled-graph properties the paper
// uses as running examples (Section 1.2), each paired with its natural
// Id-oblivious local verifier: proper 3-colouring, maximal independent set,
// forests (acyclicity), consistent parent pointers, and leader uniqueness.
// These populate the LD* side of the experiments: properties where
// identifiers are provably unnecessary.
package props

import (
	"strconv"

	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/local"
)

// ThreeColoring is the labelled graph property "x is a proper 3-colouring
// of G" with colour labels "0", "1", "2".
func ThreeColoring() decide.Property {
	return decide.PropertyFunc("proper-3-colouring", func(l *graph.Labeled) bool {
		for v := 0; v < l.N(); v++ {
			if !validColor(l.Labels[v]) {
				return false
			}
			for _, u := range l.G.Neighbors(v) {
				if l.Labels[u] == l.Labels[v] {
					return false
				}
			}
		}
		return true
	})
}

func validColor(lab graph.Label) bool {
	return lab == "0" || lab == "1" || lab == "2"
}

// ThreeColoringVerifier is the horizon-1 Id-oblivious verifier for
// ThreeColoring: check your colour is legal and differs from every
// neighbour's.
func ThreeColoringVerifier() local.ObliviousAlgorithm {
	return local.ObliviousFunc("3col-verifier", 1, func(view *graph.View) local.Verdict {
		if !validColor(view.Labels[view.Root]) {
			return local.No
		}
		for _, u := range view.G.Neighbors(view.Root) {
			if view.Labels[u] == view.Labels[view.Root] {
				return local.No
			}
		}
		return local.Yes
	})
}

// MIS is the property "the nodes labelled 1 form a maximal independent set".
func MIS() decide.Property {
	return decide.PropertyFunc("maximal-independent-set", func(l *graph.Labeled) bool {
		for v := 0; v < l.N(); v++ {
			in := l.Labels[v] == "1"
			anyNbrIn := false
			for _, u := range l.G.Neighbors(v) {
				if l.Labels[u] == "1" {
					anyNbrIn = true
				}
			}
			if in && anyNbrIn {
				return false // not independent
			}
			if !in && !anyNbrIn {
				return false // not maximal
			}
			if l.Labels[v] != "0" && l.Labels[v] != "1" {
				return false
			}
		}
		return true
	})
}

// MISVerifier is the horizon-1 Id-oblivious verifier for MIS.
func MISVerifier() local.ObliviousAlgorithm {
	return local.ObliviousFunc("mis-verifier", 1, func(view *graph.View) local.Verdict {
		lab := view.Labels[view.Root]
		if lab != "0" && lab != "1" {
			return local.No
		}
		anyNbrIn := false
		for _, u := range view.G.Neighbors(view.Root) {
			if view.Labels[u] == "1" {
				anyNbrIn = true
			}
		}
		if lab == "1" && anyNbrIn {
			return local.No
		}
		if lab == "0" && !anyNbrIn {
			return local.No
		}
		return local.Yes
	})
}

// BoundedDegree is the property "every node has degree at most d" — a
// hereditary property with a trivial horizon-1 verifier.
func BoundedDegree(d int) decide.Property {
	return decide.PropertyFunc("max-degree-"+strconv.Itoa(d), func(l *graph.Labeled) bool {
		return l.G.MaxDegree() <= d
	})
}

// BoundedDegreeVerifier verifies BoundedDegree at horizon 1.
func BoundedDegreeVerifier(d int) local.ObliviousAlgorithm {
	return local.ObliviousFunc("max-degree-verifier-"+strconv.Itoa(d), 1, func(view *graph.View) local.Verdict {
		return local.Verdict(view.G.Degree(view.Root) <= d)
	})
}

// TriangleFree is the property "G contains no triangle" — hereditary, with
// a horizon-1 verifier (a triangle is visible in the closed neighbourhood of
// any of its corners).
func TriangleFree() decide.Property {
	return decide.PropertyFunc("triangle-free", func(l *graph.Labeled) bool {
		for v := 0; v < l.N(); v++ {
			nbrs := l.G.Neighbors(v)
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if l.G.HasEdge(int(nbrs[i]), int(nbrs[j])) {
						return false
					}
				}
			}
		}
		return true
	})
}

// TriangleFreeVerifier verifies TriangleFree at horizon 1.
func TriangleFreeVerifier() local.ObliviousAlgorithm {
	return local.ObliviousFunc("triangle-free-verifier", 1, func(view *graph.View) local.Verdict {
		nbrs := view.G.Neighbors(view.Root)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if view.G.HasEdge(int(nbrs[i]), int(nbrs[j])) {
					return local.No
				}
			}
		}
		return local.Yes
	})
}

// Forest is the property "G is acyclic" (every component is a tree) — the
// package doc's running example of a property that is NOT locally
// decidable: a long cycle and a long path look identical inside every
// radius-t ball, so no local verifier exists and the property lives on the
// NLD side (a certificate — e.g. consistent parent pointers — fixes that).
// The global check runs HasCycle through its pooled graph.Traversal
// wrapper, so sweeping a suite re-uses BFS scratch across instances (and
// across goroutines) instead of allocating per call.
func Forest() decide.Property {
	return decide.PropertyFunc("forest", func(l *graph.Labeled) bool {
		return !l.G.HasCycle()
	})
}

// ForestSuite builds yes/no instances for Forest: paths and stars (and a
// two-component forest) against cycles and a unicyclic graph.
func ForestSuite(sizes []int) *decide.Suite {
	s := &decide.Suite{Name: "forest"}
	for _, n := range sizes {
		if n < 3 {
			continue
		}
		s.Yes = append(s.Yes,
			graph.UniformlyLabeled(graph.Path(n), ""),
			graph.UniformlyLabeled(graph.Star(n), ""))
		s.No = append(s.No, graph.UniformlyLabeled(graph.Cycle(n), ""))

		// Two disjoint paths: still a forest.
		b := graph.NewBuilderHint(2*n, 2*n)
		for v := 1; v < n; v++ {
			b.AddEdge(v-1, v)
			b.AddEdge(n+v-1, n+v)
		}
		s.Yes = append(s.Yes, graph.UniformlyLabeled(b.Build(), ""))

		// A path with one chord: unicyclic, not a forest.
		u := graph.NewBuilderHint(n, n)
		for v := 1; v < n; v++ {
			u.AddEdge(v-1, v)
		}
		u.AddEdge(0, n-1)
		s.No = append(s.No, graph.UniformlyLabeled(u.Build(), ""))
	}
	return s
}

// ForestCert is the certification companion to Forest: the property "x is a
// valid distance certificate for a spanning forest of G". A label is a
// non-negative integer; every edge must connect labels differing by exactly
// one, and every node with a positive label must have exactly one neighbour
// labelled one less (its parent). This is the classic NLD witness that moves
// forests from "not locally decidable" (see Forest) to locally verifiable:
// around any cycle the labels change by ±1 per step, so the cycle's maximum
// either repeats on adjacent nodes (equal labels — rejected) or has two
// parents (rejected). Hence the conjunction of the local checks holds iff G
// is a forest and x is a per-component BFS distance labelling.
func ForestCert() decide.Property {
	return decide.PropertyFunc("forest-certificate", func(l *graph.Labeled) bool {
		for v := 0; v < l.N(); v++ {
			if !validCertStep(l.Labels, l.G.Neighbors(v), l.Labels[v]) {
				return false
			}
		}
		return true
	})
}

// ForestCertVerifier is the horizon-1 Id-oblivious verifier for ForestCert:
// each node checks its own label parses, every neighbour differs by exactly
// one, and (when positive) it has a unique parent.
func ForestCertVerifier() local.ObliviousAlgorithm {
	return local.ObliviousFunc("forest-cert-verifier", 1, func(view *graph.View) local.Verdict {
		return local.Verdict(validCertStep(view.Labels, view.G.Neighbors(view.Root), view.Labels[view.Root]))
	})
}

// validCertStep is the shared local check of ForestCert: lab parses as a
// non-negative distance d, every neighbour label is d-1 or d+1, and d > 0
// implies exactly one neighbour at d-1.
func validCertStep(labels []graph.Label, nbrs []int32, lab graph.Label) bool {
	d, err := strconv.Atoi(string(lab))
	if err != nil || d < 0 {
		return false
	}
	parents := 0
	for _, u := range nbrs {
		du, err := strconv.Atoi(string(labels[u]))
		if err != nil {
			return false
		}
		switch du {
		case d - 1:
			parents++
		case d + 1:
		default:
			return false
		}
	}
	return d == 0 || parents == 1
}

// CertifyForest produces a valid ForestCert labelling for any forest: each
// component is BFS-labelled with the distance from its smallest-index node.
// On a graph with a cycle the labels are still BFS distances but the
// certificate is invalid by construction (ForestCert rejects it) — useful
// for building no-instances.
func CertifyForest(g *graph.Graph) []graph.Label {
	labels := make([]graph.Label, g.N())
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, g.N())
	for root := 0; root < g.N(); root++ {
		if dist[root] >= 0 {
			continue
		}
		dist[root] = 0
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			labels[v] = graph.Label(strconv.Itoa(dist[v]))
			for _, u := range g.Neighbors(v) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, int(u))
				}
			}
		}
	}
	return labels
}

// ForestCertSuite builds yes/no instances for ForestCert: certified paths,
// stars and multi-component forests against BFS-labelled cycles and
// corrupted certificates.
func ForestCertSuite(sizes []int) *decide.Suite {
	s := &decide.Suite{Name: "forest-certificate"}
	for _, n := range sizes {
		if n < 3 {
			continue
		}
		path := graph.Path(n)
		s.Yes = append(s.Yes,
			graph.NewLabeled(path, CertifyForest(path)),
			graph.NewLabeled(graph.Star(n), CertifyForest(graph.Star(n))))

		// Two disjoint paths: each component gets its own root.
		b := graph.NewBuilderHint(2*n, 2*n)
		for v := 1; v < n; v++ {
			b.AddEdge(v-1, v)
			b.AddEdge(n+v-1, n+v)
		}
		forest := b.Build()
		s.Yes = append(s.Yes, graph.NewLabeled(forest, CertifyForest(forest)))

		// A cycle's BFS distances are never a valid certificate.
		cycle := graph.Cycle(n)
		s.No = append(s.No, graph.NewLabeled(cycle, CertifyForest(cycle)))

		// Corrupted certificates on a genuine forest.
		bumped := CertifyForest(path)
		bumped[n/2] = graph.Label(strconv.Itoa(n + 7))
		garbled := CertifyForest(path)
		garbled[n-1] = "not-a-distance"
		s.No = append(s.No,
			graph.NewLabeled(path, bumped),
			graph.NewLabeled(path, garbled))
	}
	return s
}

// ParentPointers is the property "every node's label names the index of one
// of its neighbours (its parent) or is 'root', and exactly the structure of
// a consistent in-tree within each ball"... locality caveat: global
// rootedness is NOT locally decidable; the locally checkable part is that
// the named parent exists. This property illustrates labels that reference
// structure.
func ParentPointers() decide.Property {
	return decide.PropertyFunc("parent-pointers", func(l *graph.Labeled) bool {
		roots := 0
		for v := 0; v < l.N(); v++ {
			if l.Labels[v] == "root" {
				roots++
				continue
			}
			p, err := strconv.Atoi(string(l.Labels[v]))
			if err != nil || !contains(l.G.Neighbors(v), p) {
				return false
			}
		}
		return roots == 1
	})
}

// LeaderUniqueSuite builds yes/no instances for the "exactly one leader"
// property — the canonical example of a property in NLD (and LD with a
// promise) but not LD*: counting leaders is global.
func LeaderUniqueSuite(sizes []int) *decide.Suite {
	s := &decide.Suite{Name: "unique-leader"}
	for _, n := range sizes {
		labels := make([]graph.Label, n)
		for i := range labels {
			labels[i] = "follower"
		}
		labels[0] = "leader"
		s.Yes = append(s.Yes, graph.NewLabeled(graph.Cycle(n), labels))

		noLabels := make([]graph.Label, n)
		for i := range noLabels {
			noLabels[i] = "follower"
		}
		s.No = append(s.No, graph.NewLabeled(graph.Cycle(n), noLabels))

		twoLabels := make([]graph.Label, n)
		for i := range twoLabels {
			twoLabels[i] = "follower"
		}
		twoLabels[0] = "leader"
		twoLabels[n/2] = "leader"
		s.No = append(s.No, graph.NewLabeled(graph.Cycle(n), twoLabels))
	}
	return s
}

// ColoringSuite builds yes/no instances for ThreeColoring.
func ColoringSuite() *decide.Suite {
	cycle6 := graph.Cycle(6)
	proper := graph.NewLabeled(cycle6, []graph.Label{"0", "1", "0", "1", "0", "1"})
	clash := graph.NewLabeled(cycle6, []graph.Label{"0", "0", "1", "0", "1", "0"})
	badAlpha := graph.NewLabeled(cycle6, []graph.Label{"0", "1", "5", "1", "0", "1"})

	path := graph.Path(4)
	pathProper := graph.NewLabeled(path, []graph.Label{"2", "0", "2", "1"})

	triangle := graph.Cycle(3)
	triProper := graph.NewLabeled(triangle, []graph.Label{"0", "1", "2"})
	triClash := graph.NewLabeled(triangle, []graph.Label{"0", "1", "1"})

	return &decide.Suite{
		Name: "3-colouring",
		Yes:  []*graph.Labeled{proper, pathProper, triProper},
		No:   []*graph.Labeled{clash, badAlpha, triClash},
	}
}

// MISSuite builds yes/no instances for MIS.
func MISSuite() *decide.Suite {
	c5 := graph.Cycle(5)
	yes := graph.NewLabeled(c5, []graph.Label{"1", "0", "1", "0", "0"})
	notIndependent := graph.NewLabeled(c5, []graph.Label{"1", "1", "0", "1", "0"})
	notMaximal := graph.NewLabeled(c5, []graph.Label{"1", "0", "0", "0", "0"})

	star := graph.Star(5)
	centre := graph.NewLabeled(star, []graph.Label{"1", "0", "0", "0", "0"})
	leaves := graph.NewLabeled(star, []graph.Label{"0", "1", "1", "1", "1"})

	return &decide.Suite{
		Name: "mis",
		Yes:  []*graph.Labeled{yes, centre, leaves},
		No:   []*graph.Labeled{notIndependent, notMaximal},
	}
}

func contains(s []int32, v int) bool {
	for _, x := range s {
		if int(x) == v {
			return true
		}
	}
	return false
}
