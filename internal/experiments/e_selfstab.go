package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/halting"
	"repro/internal/local"
	"repro/internal/turing"
)

// RunE16 measures self-stabilizing decision on the pyramidal G(M, r): labels
// of a decided (accepting) instance are corrupted under each fault model,
// then healed over geometric per-victim heal rounds while the radius-1
// pyramidal label verifier re-evaluates every round. Two numbers per
// (model, rate) cell: rounds-to-recovery (how long until the fully healed
// instance reads as accepted again — always within the heal budget, since
// healing restores the original instance) and exposure (rounds in which the
// still-corrupted instance read as ACCEPTED — committed wrong verdicts).
//
// The fault models form an exposure gradient the verifier prices exactly:
// Randomize breaks the label grammar at every victim (zero exposure by
// construction), Flip replaces labels with other legal labels (mostly but
// not always caught by the orientation check), and Swap exchanges labels —
// swapping two equal labels is invisible to ANY label-reading verifier, so
// swap exposure is structural, not a verifier bug.
func RunE16(cfg Config) (*Result, error) {
	trials := 30
	if cfg.Quick {
		trials = 10
	}
	res := &Result{
		ID:     "E16",
		Title:  "Self-stabilization: verdict recovery and exposure under label corruption",
		Header: []string{"model", "rate", "episodes", "recovered", "CI95 low", "mean rounds", "exposed rounds", "exposed episodes"},
		OK:     true,
	}
	// Counter(2) has runtime 3, table side 4 = 2^2: the pyramidal family's
	// canonical small instance.
	p := halting.Params{Machine: turing.Counter(2, '0'), R: 1, MaxSteps: 100, FragmentLimit: 10}
	asm, err := p.BuildPyramidalG()
	if err != nil {
		return nil, err
	}
	dec := local.EngineObliviousDecider(p.PyramidalLabelVerifier())
	cache := engine.NewViewCache()
	seedStep := int64(0)
	for _, model := range []fault.LabelModel{fault.Flip, fault.Swap, fault.Randomize} {
		for _, rate := range []float64{0.02, 0.10} {
			seedStep++
			sw, err := fault.RecoverySweep(asm.Labeled, fault.SelfStabConfig{
				Model:   model,
				Rate:    rate,
				Decider: dec,
				Options: engine.Options{EarlyExit: true, Cache: cache},
			}, engine.TrialOptions{Trials: trials, Seed: cfg.Seed + seedStep})
			if err != nil {
				return nil, err
			}
			// Healing is capped at the budget and restores the original
			// accepting instance, so every episode must recover.
			if sw.Trials.Estimate != 1 {
				res.OK = false
			}
			// Randomize breaks the label grammar at every victim: the
			// verifier must never accept while corrupted.
			if model == fault.Randomize && sw.ExposedRounds != 0 {
				res.OK = false
			}
			res.Rows = append(res.Rows, []string{
				model.String(), fmtFloat(rate), fmt.Sprint(sw.Episodes),
				fmtFloat(sw.Trials.Estimate), fmtFloat(sw.Trials.CI.Low),
				fmtFloat(sw.MeanRecoveryRounds),
				fmt.Sprint(sw.ExposedRounds), fmt.Sprint(sw.ExposedEpisodes),
			})
		}
	}
	res.Notes = append(res.Notes,
		"every episode must recover: heal times are capped at the budget and healing restores the accepting instance",
		"randomize exposure must be 0: garbage labels fail the (M,r) parse at every victim",
		"swap exposure is structural: exchanging equal labels is invisible to any label-reading verifier",
		"all fault draws derive from the seed via per-site splitmix64 streams; the table replays exactly")
	return res, nil
}
