package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 16 {
		t.Fatalf("registry has %d experiments, want 16 (E1-E16)", len(reg))
	}
	seen := make(map[string]struct{})
	for i, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
		if _, dup := seen[e.ID]; dup {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = struct{}{}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E5"); !ok {
		t.Error("E5 not found")
	}
	if _, ok := Find("e10"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := Find("E99"); ok {
		t.Error("phantom experiment found")
	}
}

// Every experiment must run green in quick mode. This is the integration
// test of the whole reproduction pipeline.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Seed: 7}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && (e.ID == "E3" || e.ID == "E7" || e.ID == "E9") {
				t.Skip("heavy construction")
			}
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if !res.OK {
				t.Errorf("%s reported ATTENTION:\n%s", e.ID, Render(res))
			}
			if len(res.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			if res.ID != e.ID {
				t.Errorf("result id %s != %s", res.ID, e.ID)
			}
		})
	}
}

func TestRender(t *testing.T) {
	res := &Result{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"col", "value"},
		Rows:   [][]string{{"a", "1"}, {"bee", "22"}},
		Notes:  []string{"a note"},
		OK:     true,
	}
	out := Render(res)
	for _, want := range []string{"EX", "demo", "OK", "col", "bee", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	res.OK = false
	if !strings.Contains(Render(res), "ATTENTION") {
		t.Error("failed result not flagged")
	}
}

func TestBoolCellAndFmtFloat(t *testing.T) {
	if boolCell(true) != "yes" || boolCell(false) != "NO" {
		t.Error("boolCell wrong")
	}
	if fmtFloat(0.5) != "0.5000" {
		t.Errorf("fmtFloat = %s", fmtFloat(0.5))
	}
}
