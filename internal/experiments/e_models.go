package experiments

import (
	"fmt"
	"time"

	"repro/internal/decide"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/halting"
	"repro/internal/hereditary"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/props"
	"repro/internal/turing"
)

// RunE4 reproduces the Table 1 quadrant (¬B, ¬C): the generic Id-oblivious
// simulation A* agrees with ID-using deciders (the equality LD* = LD). The
// deciders here use identifiers inconsequentially — the regime where the
// simulation is lossless — and the agreement is measured instance by
// instance.
func RunE4(cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E4",
		Title:  "Id-oblivious simulation A* vs ID-using deciders",
		Header: []string{"decider", "suite", "instances", "agreement"},
		OK:     true,
	}
	cases := []struct {
		alg   local.Algorithm
		suite *decide.Suite
	}{
		{local.AsOblivious(props.ThreeColoringVerifier()), props.ColoringSuite()},
		{local.AsOblivious(props.MISVerifier()), props.MISSuite()},
	}
	for _, tc := range cases {
		lift := hereditary.ObliviousLift(tc.alg, 8)
		rep := hereditary.CompareLift(tc.alg, lift, tc.suite)
		if rep.Agreed != rep.Instances {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			tc.alg.Name(), tc.suite.Name,
			fmt.Sprint(rep.Instances),
			fmt.Sprintf("%d/%d", rep.Agreed, rep.Instances),
		})
	}
	res.Notes = append(res.Notes,
		"under (¬B, ¬C) the domain search ranges over all of N; the finite domain here is lossless for these deciders",
		"contrast: E1-E3 show the same simulation failing once (B) or (C) is imposed")
	return res, nil
}

// RunE9 reproduces Figure 3 / Appendix A: pyramidal execution tables, the
// distance shrinkage that motivates taller fragments, and the checkability
// procedure on valid and corrupted instances.
func RunE9(cfg Config) (*Result, error) {
	limit := 20
	if cfg.Quick {
		limit = 8
	}
	res := &Result{
		ID:     "E9",
		Title:  "Pyramidal G(M, r): structure, distances, checkability",
		Header: []string{"machine", "tableSide", "n(G)", "gridDist", "pyrDist", "check", "corrupt rejected"},
		OK:     true,
	}
	for _, m := range []*turing.Machine{turing.Counter(2, '0'), turing.Counter(6, '0')} {
		p := halting.Params{Machine: m, R: 1, MaxSteps: 200, FragmentLimit: limit}
		asm, err := p.BuildPyramidalG()
		if err != nil {
			return nil, err
		}
		checkErr := asm.CheckPyramidal()
		gridDist, pyrDist := asm.DistanceShrinkage()

		// Corruption: damage a table label; the check must fail.
		corrupted, err := p.BuildPyramidalG()
		if err != nil {
			return nil, err
		}
		corrupted.Labeled.Labels[corrupted.TableBase[1][1]] =
			p.NodeLabel(turing.Cell{Sym: '1', State: turing.NoHead}, 1, 1)
		rejected := corrupted.CheckPyramidal() != nil

		if checkErr != nil || !rejected || pyrDist >= gridDist {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			m.Name,
			fmt.Sprint(len(asm.TableBase)),
			fmt.Sprint(asm.Labeled.N()),
			fmt.Sprint(gridDist),
			fmt.Sprint(pyrDist),
			boolCell(checkErr == nil),
			boolCell(rejected),
		})
	}
	res.Notes = append(res.Notes,
		"pyramid fragments use side 4 = 2^2 instead of the paper's 2^(3r) (documented scale substitution)",
		"distance shrinkage is why the appendix needs fragments of height 3r to keep fooling r-horizon algorithms")
	return res, nil
}

// RunE11 reproduces the extension NLD* = NLD: certificates carrying guessed
// identifiers let an Id-oblivious nondeterministic verifier match an
// ID-using one.
func RunE11(cfg Config) (*Result, error) {
	certTrials := 40
	if cfg.Quick {
		certTrials = 10
	}
	alg := local.AlgorithmFunc("cycle>=4", 1, func(view *graph.View) local.Verdict {
		if view.G.Degree(view.Root) != 2 {
			return local.No
		}
		nbrs := view.G.Neighbors(view.Root)
		if view.G.HasEdge(int(nbrs[0]), int(nbrs[1])) {
			return local.No
		}
		return local.Yes
	})
	verifier := hereditary.GuessIDVerifier(alg)

	yes := graph.UniformlyLabeled(graph.Cycle(6), "c")
	honest := hereditary.HonestIDCertificate(ids.Sequential(6))
	honestOK := decide.RunNLD(verifier, yes, honest).Accepted

	no := graph.UniformlyLabeled(graph.Cycle(3), "c")
	fooled := 0
	for _, cert := range decide.RandomCertificates(3, certTrials, []graph.Label{"0", "1", "2", "3", "4", "5"}, cfg.Seed) {
		if decide.RunNLD(verifier, no, cert).Accepted {
			fooled++
		}
	}
	res := &Result{
		ID:     "E11",
		Title:  "NLD* = NLD: guessed-identifier certificates",
		Header: []string{"check", "value", "pass"},
		OK:     honestOK && fooled == 0,
	}
	res.Rows = append(res.Rows,
		[]string{"honest certificate accepted (C6)", boolCell(honestOK), boolCell(honestOK)},
		[]string{fmt.Sprintf("random certificates fooling C3 (0/%d)", certTrials), fmt.Sprint(fooled), boolCell(fooled == 0)},
	)
	res.Notes = append(res.Notes,
		"the verifier re-runs the ID-using algorithm on guessed identifiers and rejects local collisions",
		"completeness: honest identifiers are always a valid certificate — nondeterminism subsumes identifiers")
	return res, nil
}

// RunE12 reproduces the extension LD* = LD for hereditary languages: the
// oblivious lift of an ID-using decider agrees with it across hereditary
// suites (and the properties really are hereditary, checked exhaustively on
// small instances).
func RunE12(cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E12",
		Title:  "Hereditary languages: decider vs oblivious lift",
		Header: []string{"property", "hereditary", "instances", "agreement"},
		OK:     true,
	}
	type entry struct {
		prop  decide.Property
		alg   local.Algorithm
		suite *decide.Suite
	}
	entries := []entry{
		{
			props.TriangleFree(),
			local.AsOblivious(props.TriangleFreeVerifier()),
			&decide.Suite{
				Name: "triangle-free",
				Yes: []*graph.Labeled{
					graph.UniformlyLabeled(graph.Cycle(5), ""),
					graph.UniformlyLabeled(graph.Grid(2, 3), ""),
				},
				No: []*graph.Labeled{
					graph.UniformlyLabeled(graph.Cycle(3), ""),
					graph.UniformlyLabeled(graph.Complete(4), ""),
				},
			},
		},
		{
			props.BoundedDegree(2),
			local.AsOblivious(props.BoundedDegreeVerifier(2)),
			&decide.Suite{
				Name: "max-degree-2",
				Yes: []*graph.Labeled{
					graph.UniformlyLabeled(graph.Cycle(6), ""),
					graph.UniformlyLabeled(graph.Path(5), ""),
				},
				No: []*graph.Labeled{
					graph.UniformlyLabeled(graph.Star(5), ""),
				},
			},
		},
	}
	for _, e := range entries {
		hereditaryOK := hereditary.IsHereditary(e.prop, e.suite.Yes, 10) == nil
		lift := hereditary.ObliviousLift(e.alg, 8)
		rep := hereditary.CompareLift(e.alg, lift, e.suite)
		if !hereditaryOK || rep.Agreed != rep.Instances {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			e.prop.Name(), boolCell(hereditaryOK),
			fmt.Sprint(rep.Instances), fmt.Sprintf("%d/%d", rep.Agreed, rep.Instances),
		})
	}
	res.Notes = append(res.Notes,
		"hereditariness checked by exhaustive induced-subgraph enumeration on the yes-instances")
	return res, nil
}

// RunE13 is the model ablation, now over all three engine backends: the
// functional (sequential and sharded) evaluation paths and the goroutine
// message-passing runtime must produce identical per-node verdicts; their
// relative cost is reported.
func RunE13(cfg Config) (*Result, error) {
	sizes := []int{20, 60}
	if cfg.Quick {
		sizes = []int{20}
	}
	res := &Result{
		ID:     "E13",
		Title:  "LOCAL runtime ablation: engine backends (sequential, sharded, message passing)",
		Header: []string{"n", "horizon", "identical", "seqTime", "shardTime", "mpTime", "messages", "knowledgeUnits"},
		OK:     true,
	}
	dec := engine.Decider{Name: "hash", Horizon: 2, UsesIDs: true, Decide: func(view *graph.View) engine.Verdict {
		sum := 0
		for _, b := range []byte(view.Code()) {
			sum += int(b)
		}
		return engine.Verdict(sum%5 != 0)
	}}
	for _, n := range sizes {
		g := graph.Random(n, 0.1, cfg.Seed)
		l := graph.RandomLabels(g, []graph.Label{"a", "b"}, cfg.Seed+1)
		in := graph.NewInstance(l, ids.RandomBounded(n, ids.Quadratic(), cfg.Seed+2))

		type timedRun struct {
			out     engine.Outcome
			elapsed time.Duration
		}
		runOn := func(sched engine.Scheduler) timedRun {
			start := time.Now()
			out := engine.Eval(dec, in, engine.Options{Scheduler: sched})
			return timedRun{out: out, elapsed: time.Since(start)}
		}
		seq := runOn(engine.Sequential)
		shard := runOn(engine.Sharded)
		mp := runOn(engine.MessagePassing)

		identical := true
		for v := range seq.out.Verdicts {
			if seq.out.Verdicts[v] != shard.out.Verdicts[v] || seq.out.Verdicts[v] != mp.out.Verdicts[v] {
				identical = false
			}
		}
		if !identical {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n), "2", boolCell(identical),
			seq.elapsed.Round(time.Microsecond).String(),
			shard.elapsed.Round(time.Microsecond).String(),
			mp.elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(mp.out.Stats.Messages),
			fmt.Sprint(mp.out.Stats.KnowledgeUnits),
		})
	}
	res.Notes = append(res.Notes,
		"the message-passing backend restricts flooded knowledge to the induced ball, matching the functional definition exactly",
		"all backends share one engine; the parity suite in internal/engine pins their verdict-level agreement")
	return res, nil
}
