package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/halting"
	"repro/internal/oblivious"
	"repro/internal/turing"
)

// RunE14 reproduces the paper's closing observation on randomisation
// thresholds (Section 1.1 / 3.3): for hereditary languages, (p, q)-decidable
// with p^2 + q > 1 collapses to deterministic decidability [FKP, Theorem
// 3.3]; Corollary 1's decider for P achieves p = 1 and q -> 1, so
// p^2 + q -> 2 — far above the threshold — while P remains OUTSIDE LD*.
// Hence "the threshold result does not hold if we consider all languages"
// in the Id-oblivious setting. The experiment measures (p, q) and reports
// p^2 + q against the threshold.
func RunE14(cfg Config) (*Result, error) {
	trials := 150
	ks := []int{3, 7}
	if cfg.Quick {
		trials = 30
		ks = []int{3}
	}
	res := &Result{
		ID:     "E14",
		Title:  "Randomisation threshold: Corollary 1's decider exceeds p^2+q=1 yet P ∉ LD*",
		Header: []string{"no-instance machine", "p (yes side)", "q (no side)", "p^2+q", "p^2+q CI-low", "above threshold"},
		OK:     true,
	}
	for _, k := range ks {
		// Yes side: same construction with output 0; p = 1 by design. The
		// trial engine estimates acceptance, which is p directly.
		yes := halting.Params{Machine: turing.Counter(k, '0'), R: 1, MaxSteps: 500, FragmentLimit: 10}
		asmYes, err := yes.BuildG()
		if err != nil {
			return nil, err
		}
		yesStats, err := yes.RejectionTrials(asmYes, engine.TrialOptions{Trials: trials, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		p := yesStats.Estimate

		no := halting.Params{Machine: turing.Counter(k, '1'), R: 1, MaxSteps: 500, FragmentLimit: 10}
		asmNo, err := no.BuildG()
		if err != nil {
			return nil, err
		}
		noStats, err := no.RejectionTrials(asmNo, engine.TrialOptions{Trials: trials, Seed: cfg.Seed + 1})
		if err != nil {
			return nil, err
		}
		q := 1 - noStats.Estimate

		sum := p*p + q
		// Conservative version of the threshold check: take both
		// probabilities at the pessimistic end of their Wilson intervals, so
		// "above threshold" is a statistical claim rather than a point one.
		sumLow := yesStats.CI.Low*yesStats.CI.Low + (1 - noStats.CI.High)
		above := sumLow > 1
		if p < 1 || !above {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			no.Machine.Name, fmtFloat(p), fmtFloat(q), fmtFloat(sum), fmtFloat(sumLow), boolCell(above),
		})
	}
	res.Notes = append(res.Notes,
		"hereditary threshold [FKP11, Thm 3.3]: p^2+q > 1 implies derandomisable; P breaks this for general languages",
		"P is not hereditary: removing the pivot or table rows leaves graphs outside P",
		"CI-low takes p and q at the pessimistic ends of their Wilson 95% intervals")
	return res, nil
}

// RunE15 reproduces the PO-model side of Section 1.3: port numbering and
// orientation give strictly more than Id-obliviousness for construction
// tasks (edge orientation, 2-colouring a 1-regular graph) yet still cannot
// decide the paper's promise problems — under the consistent cycle
// orientation, all PO views coincide across cycle lengths.
func RunE15(cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E15",
		Title:  "PO model: construction tasks solvable, size promise problems still impossible",
		Header: []string{"check", "value", "pass"},
		OK:     true,
	}

	// Construction side: orientation and 2-colouring via PO.
	cyc := graph.UniformlyLabeled(graph.Cycle(8), "")
	pn := oblivious.NewPortNumbering(cyc.G)
	orientErr := oblivious.ValidOrientation(cyc, oblivious.RunPOOutputs(oblivious.OrientEdgesPO(), cyc, pn))
	res.Rows = append(res.Rows, []string{"edge orientation on C8 via PO", "valid", boolCell(orientErr == nil)})
	if orientErr != nil {
		res.OK = false
	}

	matching := graph.New(4)
	matching.AddEdge(0, 1)
	matching.AddEdge(2, 3)
	ml := graph.UniformlyLabeled(matching, "")
	colors := oblivious.RunPOOutputs(oblivious.TwoColoringPO(), ml, oblivious.NewPortNumbering(matching))
	colOK := colors[0] != colors[1] && colors[2] != colors[3]
	res.Rows = append(res.Rows, []string{"2-colouring a 1-regular graph via PO", fmt.Sprint(colors), boolCell(colOK)})
	if !colOK {
		res.OK = false
	}

	// Decision side: consistent cycles of different lengths have IDENTICAL
	// PO views, so the Section 2 promise problem stays impossible.
	sizes := [2]int{6, 13}
	if cfg.Quick {
		sizes = [2]int{5, 9}
	}
	gA, pnA := oblivious.ConsistentCycleOrientation(sizes[0])
	gB, pnB := oblivious.ConsistentCycleOrientation(sizes[1])
	vA := oblivious.BuildPOView(graph.UniformlyLabeled(gA, "c"), pnA, 0, 2).Encode()
	vB := oblivious.BuildPOView(graph.UniformlyLabeled(gB, "c"), pnB, 0, 2).Encode()
	same := vA == vB
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("PO views of C%d vs C%d identical (t=2)", sizes[0], sizes[1]),
		boolCell(same), boolCell(same),
	})
	if !same {
		res.OK = false
	}
	// And all nodes within one consistent cycle agree too.
	uniform := oblivious.POViewsAllEqual(graph.UniformlyLabeled(gA, "c"), pnA, 2)
	res.Rows = append(res.Rows, []string{"all nodes of a consistent cycle share one PO view", boolCell(uniform), boolCell(uniform)})
	if !uniform {
		res.OK = false
	}
	res.Notes = append(res.Notes,
		"PO sits strictly between Id-oblivious and LOCAL: symmetry breaking without size information",
		"identifiers help decision exactly by leaking n — ports and orientations leak nothing about n")
	return res, nil
}
