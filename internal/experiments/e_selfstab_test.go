package experiments

import (
	"reflect"
	"testing"
)

// The replay guarantee behind -fault-seed: the same configuration reproduces
// the identical E16 recovery table — every fault draw, heal time and episode
// verdict derives from the seed through pure per-site streams, so two runs
// (whatever the worker pools do) render cell-for-cell identical rows.
func TestE16Deterministic(t *testing.T) {
	cfg := Config{Quick: true, Seed: 3}
	a, err := RunE16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK {
		t.Fatalf("E16 reported ATTENTION:\n%s", Render(a))
	}
	b, err := RunE16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("same seed, different tables:\n%v\n%v", a.Rows, b.Rows)
	}
	// A different seed draws different episodes: the table is seed-sensitive,
	// not constant.
	c, err := RunE16(Config{Quick: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Rows, c.Rows) {
		t.Error("different seeds rendered identical tables; the fault streams look ignored")
	}
}
