// Package experiments is the reproduction harness: one experiment per table
// and figure of the paper (plus the extension results), each producing
// printable rows. cmd/repro renders the whole set; bench_test.go wraps each
// experiment in a testing.B benchmark. The experiment index lives in
// DESIGN.md; measured-vs-paper notes live in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Config tunes experiment sizes.
type Config struct {
	// Quick shrinks parameter sweeps for benchmark iterations.
	Quick bool
	// Seed drives all pseudo-randomness.
	Seed int64
}

// DefaultConfig is the full-size configuration used by cmd/repro.
func DefaultConfig() Config { return Config{Quick: false, Seed: 42} }

// Result is a rendered experiment outcome.
type Result struct {
	ID    string
	Title string
	// Header and Rows form the printed table.
	Header []string
	Rows   [][]string
	// Notes carry caveats (truncations, substitutions, deviations).
	Notes []string
	// OK aggregates pass/fail checks embedded in the experiment.
	OK bool
}

// Experiment is a registered reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Result, error)
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Table 1 quadrant (B, C): LD* != LD via Section 3 with bounded identifiers", Run: RunE1},
		{ID: "E2", Title: "Table 1 quadrant (B, ¬C): LD* != LD via Section 2 with an oracle bound", Run: RunE2},
		{ID: "E3", Title: "Table 1 quadrant (¬B, C): LD* != LD via Section 3", Run: RunE3},
		{ID: "E4", Title: "Table 1 quadrant (¬B, ¬C): LD* = LD via the Id-oblivious simulation A*", Run: RunE4},
		{ID: "E5", Title: "Figure 1: layered trees T_r, small instances H_r, view coverage", Run: RunE5},
		{ID: "E6", Title: "Section 2 promise problem: r-cycle vs f(r)+1-cycle", Run: RunE6},
		{ID: "E7", Title: "Figure 2: G(M, r) assembly, fragment collection, generator B", Run: RunE7},
		{ID: "E8", Title: "Section 3 promise problem R: machine on a cycle", Run: RunE8},
		{ID: "E9", Title: "Figure 3 / Appendix A: pyramidal tables and checkability", Run: RunE9},
		{ID: "E10", Title: "Corollary 1: randomised Id-oblivious decider success probability", Run: RunE10},
		{ID: "E11", Title: "Extension (§1.3): NLD* = NLD via guessed-identifier certificates", Run: RunE11},
		{ID: "E12", Title: "Extension (§1.3): LD* = LD for hereditary languages (oblivious lift)", Run: RunE12},
		{ID: "E13", Title: "Ablation: view-based vs goroutine message-passing LOCAL runtime", Run: RunE13},
		{ID: "E14", Title: "Extension (§3.3): the hereditary randomisation threshold fails for general languages", Run: RunE14},
		{ID: "E15", Title: "Extension (§1.3): the PO model — constructive power without size information", Run: RunE15},
		{ID: "E16", Title: "Self-stabilization: verdict recovery under label corruption and healing", Run: RunE16},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Render formats a result as an aligned text table.
func Render(r *Result) string {
	var b strings.Builder
	status := "OK"
	if !r.OK {
		status = "ATTENTION"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "  %-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "  %s", cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	return b.String()
}

// RunAll executes every experiment and renders the outputs in order.
func RunAll(cfg Config) (string, bool, error) {
	var b strings.Builder
	allOK := true
	for _, e := range Registry() {
		res, err := e.Run(cfg)
		if err != nil {
			return b.String(), false, fmt.Errorf("%s: %w", e.ID, err)
		}
		if !res.OK {
			allOK = false
		}
		b.WriteString(Render(res))
		b.WriteByte('\n')
	}
	return b.String(), allOK, nil
}

// helpers shared by experiment implementations -----------------------------------

func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func fmtFloat(f float64) string { return fmt.Sprintf("%.4f", f) }
