package experiments

import (
	"fmt"

	"repro/internal/bounded"
	"repro/internal/decide"
	"repro/internal/ids"
)

// RunE2 reproduces the Table 1 quadrant (B, ¬C): the Section 2 separation
// with the identifier bound supplied as a black-box oracle (modelling ¬C).
// Rows: the promise-free tree construction — ID decider verdicts on all
// small instances and on T_r — plus the oblivious side's coverage summary.
func RunE2(cfg Config) (*Result, error) {
	// The oracle tabulates f(n) = n (identity is the slowest strictly
	// increasing bound, keeping R(r) buildable); the algorithm only queries.
	oracle := &ids.TabulatedOracle{
		Table:   map[int]int{},
		Default: func(n int) int { return n },
		Label:   "tabulated-identity",
	}
	p := bounded.Params{R: 1, Bound: ids.OracleBound(oracle)}
	suite, err := p.TreeSuite()
	if err != nil {
		return nil, err
	}
	rep := decide.VerifyLD(p.IDDecider(), suite, decide.BoundedIDs(p.Bound, cfg.Seed), 4)

	res := &Result{
		ID:     "E2",
		Title:  "Section 2 under (B, ¬C): oracle-bounded identifiers decide P; structure checks decide P'",
		Header: []string{"check", "value", "pass"},
		OK:     rep.OK(),
	}
	res.Rows = append(res.Rows,
		[]string{"R(r) = f(2^(r+1)+1)", fmt.Sprint(p.BigR()), "-"},
		[]string{"|H_r| (yes-instances)", fmt.Sprint(rep.YesTotal), boolCell(rep.YesPassed == rep.YesTotal)},
		[]string{"no-instances (T_r + corruptions)", fmt.Sprint(rep.NoTotal), boolCell(rep.NoPassed == rep.NoTotal)},
		[]string{"ID decider report", rep.String(), boolCell(rep.OK())},
	)
	res.Notes = append(res.Notes,
		"the bound f is consulted only through the Oracle interface (assumption ¬C)",
		"no-instance n="+fmt.Sprint(suite.No[0].N())+" guarantees an identifier >= R(r) under (B)")
	return res, nil
}

// RunE5 reproduces Figure 1: layered trees, small instances and the view
// coverage at the heart of P ∉ LD*. The shape result: interior coverage
// rises toward 1 as r grows (uncovered nodes are the dyadic-boundary
// fraction ~2^(2-r)); the overall fraction also reports the known boundary
// caveat (bottom range-edge nodes, documented in DESIGN.md).
func RunE5(cfg Config) (*Result, error) {
	depth := 9
	rs := []int{2, 3, 4, 5}
	if cfg.Quick {
		depth = 7
		rs = []int{2, 3}
	}
	res := &Result{
		ID:     "E5",
		Title:  "Layered-tree view coverage (horizon 1), host depth " + fmt.Sprint(depth),
		Header: []string{"r", "hostNodes", "|H_r|", "coverage", "interiorCoverage"},
		OK:     true,
	}
	prev := -1.0
	for _, r := range rs {
		p := bounded.Params{R: r, Bound: ids.Linear(1)}
		rep, err := p.MeasureCoverageAtDepth(depth, 1)
		if err != nil {
			return nil, err
		}
		slices := 0
		for y0 := 0; y0+r <= depth; y0++ {
			slices += 1 << y0
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(r),
			fmt.Sprint(rep.TotalNodes),
			fmt.Sprint(slices),
			fmtFloat(rep.Fraction()),
			fmtFloat(rep.InteriorFraction()),
		})
		if rep.InteriorFraction() < prev {
			res.OK = false
			res.Notes = append(res.Notes, "interior coverage not monotone in r")
		}
		prev = rep.InteriorFraction()
	}
	res.Notes = append(res.Notes,
		"paper's claim: every t-view of T_r occurs in H_r for r >> t; measured shape: interior coverage -> 1",
		"full coverage needs r beyond feasible tree depths (R(r) = f(2^(r+1)+1)); see DESIGN.md substitutions")
	return res, nil
}

// RunE6 reproduces the Section 2 promise problem: n = r versus n = f(r)+1
// cycles. The ID decider separates under every assignment; the oblivious
// side is impossible — verified exactly by comparing the complete view sets.
func RunE6(cfg Config) (*Result, error) {
	rs := []int{6, 8, 12}
	if cfg.Quick {
		rs = []int{6}
	}
	res := &Result{
		ID:     "E6",
		Title:  "Cycle promise problem under f(n) = 2n",
		Header: []string{"r", "f(r)+1", "ID decider", "views identical (t=2)"},
		OK:     true,
	}
	for _, r := range rs {
		p := bounded.Params{R: r, Bound: ids.Linear(2)}
		prob, err := p.CyclePromise()
		if err != nil {
			return nil, err
		}
		rep := decide.VerifyLD(p.CycleIDDecider(), prob.AsSuite(), decide.BoundedIDs(p.Bound, cfg.Seed), 5)
		same, err := p.CycleViewsIdentical(2)
		if err != nil {
			return nil, err
		}
		if !rep.OK() || !same {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(r),
			fmt.Sprint(prob.No[0].N()),
			boolCell(rep.OK()),
			boolCell(same),
		})
	}
	res.Notes = append(res.Notes,
		"views-identical is a complete indistinguishability certificate: any Id-oblivious decider treats both cycles alike",
		"no-instances use n = f(r)+1 (paper says f(r)); see the off-by-one note in internal/bounded")
	return res, nil
}
