package experiments

import (
	"fmt"
	"math"

	"repro/internal/decide"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/halting"
	"repro/internal/local"
	"repro/internal/turing"
)

// RunE1 reproduces the Table 1 quadrant (B, C): the Section 3 property P
// with bounded identifiers. The LD decider works because (B) still allows
// identifiers up to f(n) and G(M, r) has more nodes than M's runtime; the
// LD* impossibility is inherited from the (¬B, C) case (E3), since bounding
// identifiers only weakens Id-using algorithms, never Id-oblivious ones.
func RunE1(cfg Config) (*Result, error) {
	limit := 40
	if cfg.Quick {
		limit = 15
	}
	res := &Result{
		ID:     "E1",
		Title:  "Section 3 LD decider under bounded identifiers f(n) = n",
		Header: []string{"machine", "L", "n(G)", "accepted", "want"},
		OK:     true,
	}
	cases := []struct {
		machine *turing.Machine
		lang    string
		want    bool
	}{
		{turing.HaltWith('0'), "L0", true},
		{turing.HaltWith('1'), "L1", false},
		{turing.Counter(4, '0'), "L0", true},
		{turing.Counter(4, '1'), "L1", false},
	}
	for _, tc := range cases {
		p := halting.Params{Machine: tc.machine, R: 1, MaxSteps: 200, FragmentLimit: limit}
		asm, err := p.BuildG()
		if err != nil {
			return nil, err
		}
		// Bounded identifiers: the tightest legal regime f(n) = n gives the
		// assignment 0..n-1.
		n := asm.Labeled.N()
		seq := make([]int, n)
		for i := range seq {
			seq[i] = i
		}
		out := engine.Eval(local.EngineDecider(p.LDDecider()), graph.NewInstance(asm.Labeled, seq),
			engine.Options{Scheduler: engine.Sharded, EarlyExit: true})
		if out.Accepted != tc.want {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			tc.machine.Name, tc.lang, fmt.Sprint(n),
			boolCell(out.Accepted), boolCell(tc.want),
		})
	}
	res.Notes = append(res.Notes,
		"identifiers capped at n-1 (f(n)=n) still exceed the runtime: n > (s+1)^2 - 1 >= s",
		"LD* impossibility carries over from E3: oblivious algorithms never see identifiers at all")
	return res, nil
}

// RunE3 reproduces the Table 1 quadrant (¬B, C): the generator B halts on
// every machine, and every budgeted Id-oblivious candidate is fooled by an
// L1 machine whose runtime exceeds its budget — the executable face of
// Lemma 1.
func RunE3(cfg Config) (*Result, error) {
	limit := 60
	if cfg.Quick {
		limit = 20
	}
	res := &Result{
		ID:     "E3",
		Title:  "Generator B totality and budgeted-candidate fooling",
		Header: []string{"machine", "halts", "B codes", "candidate", "accepts", "correct"},
		OK:     true,
	}
	// Totality: B halts on non-halting machines.
	for _, m := range []*turing.Machine{turing.Looper(), turing.Zigzag()} {
		p := halting.Params{Machine: m, R: 1, MaxSteps: 200, FragmentLimit: limit}
		gen, err := p.GenerateNeighborhoods()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			m.Name, "no", fmt.Sprint(len(gen.Codes)), "-", "-", boolCell(len(gen.Codes) > 0),
		})
	}
	// Fooling: budget below runtime accepts an L1 machine.
	mL1 := turing.Counter(8, '1') // runtime 9, outputs 1
	p := halting.Params{Machine: mL1, R: 1, MaxSteps: 200, FragmentLimit: limit}
	for _, budget := range []int{4, 20} {
		cand := &halting.BudgetedCandidate{Machine: mL1, Budget: budget}
		sep, err := p.RunSeparation(cand)
		if err != nil {
			return nil, err
		}
		wantAccept := budget < 9 // fooled iff budget below runtime
		correct := sep.Accepted == wantAccept
		if !correct {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			mL1.Name, "yes", fmt.Sprint(sep.CodesTested), cand.Name(),
			boolCell(sep.Accepted), boolCell(correct),
		})
	}
	res.Notes = append(res.Notes,
		"for every budget there is a machine that fools it (Counter(k) with k+1 > budget): no computable Id-oblivious decider exists",
		fmt.Sprintf("fragment collections truncated at %d contents (reported, never silent)", limit))
	return res, nil
}

// RunE7 reproduces Figure 2: the anatomy of G(M, r) for the machine library
// plus the (P1)-(P3) checks.
func RunE7(cfg Config) (*Result, error) {
	limit := 30
	machines := []*turing.Machine{
		turing.HaltWith('0'), turing.HaltWith('1'), turing.BusyBeaverish(), turing.Counter(3, '0'),
	}
	if cfg.Quick {
		limit = 10
		machines = machines[:2]
	}
	res := &Result{
		ID:     "E7",
		Title:  "G(M, r) anatomy (r=1, fragment contents capped)",
		Header: []string{"machine", "table", "placedFrags", "n(G)", "m(G)", "VerifyG", "P3 exact"},
		OK:     true,
	}
	for _, m := range machines {
		p := halting.Params{Machine: m, R: 1, MaxSteps: 200, FragmentLimit: limit}
		asm, err := p.BuildG()
		if err != nil {
			return nil, err
		}
		verifyErr := asm.VerifyG()
		gen, err := p.GenerateNeighborhoods()
		if err != nil {
			return nil, err
		}
		want := halting.NeighborhoodSet(asm.Labeled, p.R, halting.ExactCodeLimit)
		exact := len(gen.Codes) == len(want)
		if exact {
			for code := range want {
				if _, ok := gen.Codes[code]; !ok {
					exact = false
					break
				}
			}
		}
		if verifyErr != nil || !exact {
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			m.Name,
			fmt.Sprintf("%dx%d", asm.TableHeight(), asm.TableWidth()),
			fmt.Sprint(len(asm.Fragments)),
			fmt.Sprint(asm.Labeled.N()),
			fmt.Sprint(asm.Labeled.G.M()),
			boolCell(verifyErr == nil),
			boolCell(exact),
		})
	}
	res.Notes = append(res.Notes,
		"P3-exact uses the short-machine path (runtime within the generator window); the long path is characterised in internal/halting tests",
		"fragment growth with machine size is the obfuscation's cost: |C| ~ (|Γ|(|Q|+2))^(3r) x 9 phases")
	return res, nil
}

// RunE8 reproduces the Section 3 promise problem R: runtime-vs-budget fooling
// matrix plus the ID decider's correctness.
func RunE8(cfg Config) (*Result, error) {
	registry := []*turing.Machine{
		turing.Looper(), turing.Counter(4, '0'), turing.Counter(12, '0'), turing.Counter(30, '0'),
	}
	budgets := []int{5, 13, 31}
	if cfg.Quick {
		budgets = []int{5}
	}
	res := &Result{
		ID:     "E8",
		Title:  "Promise problem R: budgeted oblivious deciders vs the ID decider",
		Header: []string{"decider", "looper", "run5", "run13", "run31", "verdict"},
		OK:     true,
	}
	prob, err := halting.PromiseR(
		[]*turing.Machine{turing.Looper()},
		[]*turing.Machine{turing.Counter(4, '0'), turing.Counter(12, '0'), turing.Counter(30, '0')},
		500,
	)
	if err != nil {
		return nil, err
	}
	// ID decider row.
	idRep := decide.VerifyLD(halting.PromiseRIDDecider(registry), prob.AsSuite(), decide.UnboundedIDs(cfg.Seed), 4)
	if !idRep.OK() {
		res.OK = false
	}
	res.Rows = append(res.Rows, []string{
		"id-decider", "accept", "reject", "reject", "reject", boolCell(idRep.OK()),
	})
	// Budgeted rows: a budget b correctly rejects runtimes <= b and is
	// fooled beyond. The whole sweep shares one cross-run verdict cache:
	// the promise instances are machine cycles whose views repeat across
	// instances, so later evaluations mostly reuse verdicts decided earlier
	// (the cache keys on decider name, so budgets never cross-talk).
	cache := engine.NewViewCache()
	evaluations := 0
	for _, b := range budgets {
		alg := halting.PromiseRBudgetedOblivious(registry, b)
		row := []string{alg.Name()}
		ok := true
		// One batched launch per budget: the instance slice shares one worker
		// pool and per-worker extractor on top of the sweep-wide cache.
		outs := engine.EvalBatchOblivious(local.EngineObliviousDecider(alg),
			append(prob.Yes, prob.No...),
			engine.Options{EarlyExit: true, Dedup: true, Cache: cache})
		for i, out := range outs {
			evaluations++
			cell := "accept"
			if !out.Accepted {
				cell = "reject"
			}
			// Expected: accept looper; reject iff runtime <= budget.
			runtimes := []int{-1, 5, 13, 31}
			want := runtimes[i] == -1 || runtimes[i] > b
			if out.Accepted != want {
				ok = false
			}
			row = append(row, cell)
		}
		row = append(row, boolCell(ok))
		if !ok {
			res.OK = false
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"every budget is fooled by the next longer machine: the fooling frontier moves but never disappears",
		"the ID decider scales its simulation with the identifier and is correct on all instances",
		fmt.Sprintf("cross-run view cache: %d distinct views decided across %d engine evaluations", cache.Len(), evaluations))
	return res, nil
}

// RunE10 reproduces Corollary 1: the randomised Id-oblivious decider's
// rejection probability on no-instances versus the paper's bound
// 1 - (1 - 1/sqrt(s))^n (the acceptance side is exact: p = 1).
//
// The pass criterion is interval-based: the sweep's Wilson confidence
// interval on the rejection rate must not lie entirely below the paper
// bound. The seed-era criterion (point estimate >= bound - 0.1) was
// flaky-by-construction — a fixed margin on a fixed trial count neither
// tracks the binomial noise floor nor tightens when trials grow.
func RunE10(cfg Config) (*Result, error) {
	trials := 200
	ks := []int{3, 7, 15}
	if cfg.Quick {
		trials = 40
		ks = []int{3}
	}
	res := &Result{
		ID:     "E10",
		Title:  "Randomised decider: rejection probability vs bound",
		Header: []string{"machine", "runtime", "n(G)", "trials", "rejectRate", "rejectCI95", "paperBound"},
		OK:     true,
	}
	for _, k := range ks {
		m := turing.Counter(k, '1') // L1: must be rejected
		p := halting.Params{Machine: m, R: 1, MaxSteps: 500, FragmentLimit: 10}
		asm, err := p.BuildG()
		if err != nil {
			return nil, err
		}
		stats, err := p.RejectionTrials(asm, engine.TrialOptions{Trials: trials, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		// The engine estimates acceptance; mirror the interval for rejection.
		reject := 1 - stats.Estimate
		rejectCI := engine.Interval{Low: 1 - stats.CI.High, High: 1 - stats.CI.Low}
		s := float64(k + 1)
		n := float64(asm.Labeled.N())
		bound := 1 - math.Pow(1-1/math.Sqrt(s), n)
		if rejectCI.High < bound { // the whole interval undershoots the bound
			res.OK = false
		}
		res.Rows = append(res.Rows, []string{
			m.Name, fmt.Sprint(k + 1), fmt.Sprint(asm.Labeled.N()), fmt.Sprint(stats.Trials),
			fmtFloat(reject), fmtInterval(rejectCI), fmtFloat(bound),
		})
	}
	res.Notes = append(res.Notes,
		"yes-instances are never rejected (p = 1): the decider only rejects on an observed non-0 halt",
		"with many nodes and short runtimes the bound is ~1; longer runtimes would need budget draws n_v >= s",
		"pass criterion: the Wilson 95% interval on the rejection rate must reach the paper bound")
	return res, nil
}

// fmtInterval renders a confidence interval as [low, high].
func fmtInterval(iv engine.Interval) string {
	return fmt.Sprintf("[%s, %s]", fmtFloat(iv.Low), fmtFloat(iv.High))
}
