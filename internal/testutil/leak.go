// Package testutil holds shared test-only helpers: currently the
// goroutine-leak assertion used by the engine's cancellation tests and the
// decided server's shutdown tests. It is a dependency-free goleak-style
// check — the repository deliberately vendors nothing.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// leakSlack is the number of extra goroutines tolerated at cleanup time:
// the Go runtime starts and stops housekeeping goroutines (GC workers, timer
// scavenger) asynchronously, so an exact count is flaky by construction.
const leakSlack = 2

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup that
// polls until the count settles back to the snapshot (plus a small runtime
// slack) or fails with a full stack dump. Call it at the top of any test
// that spawns workers through the engine or the decided server: a cancelled
// deadline or a drained shutdown must not strand goroutines.
//
// Tests using it must not call t.Parallel(): concurrent tests spawn their
// own goroutines and make the global count meaningless.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before+leakSlack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after (slack %d)\n%s",
			before, after, leakSlack, buf[:runtime.Stack(buf, true)])
	})
}
