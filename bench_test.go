// Package repro's root benchmark harness: one benchmark per table / figure
// / corollary of the paper, each delegating to the experiment registry
// (internal/experiments) so that `go test -bench=.` regenerates every
// reported artifact. The rows themselves are printed by cmd/repro; the
// benchmarks measure the cost of regenerating them.
package repro

import (
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatalf("%s reported ATTENTION:\n%s", id, experiments.Render(res))
		}
	}
}

// Table 1 (Section 1.1): the LD* vs LD relationships under all four model
// combinations.
func BenchmarkTable1_BC(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkTable1_BnotC(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkTable1_notBC(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkTable1_notBnotC(b *testing.B) { benchExperiment(b, "E4") }

// Figure 1 (Section 2): layered trees T_r and small instances H_r.
func BenchmarkFigure1_LayeredTrees(b *testing.B) { benchExperiment(b, "E5") }

// Section 2's in-text promise problem on cycles.
func BenchmarkPromiseCycle(b *testing.B) { benchExperiment(b, "E6") }

// Figure 2 (Section 3): the construction of G(M, r).
func BenchmarkFigure2_GMr(b *testing.B) { benchExperiment(b, "E7") }

// Section 3's in-text promise problem R.
func BenchmarkPromiseHalting(b *testing.B) { benchExperiment(b, "E8") }

// Figure 3 / Appendix A: pyramidal tables.
func BenchmarkFigure3_Pyramid(b *testing.B) { benchExperiment(b, "E9") }

// Corollary 1: randomised Id-oblivious decision.
func BenchmarkCorollary1_Randomized(b *testing.B) { benchExperiment(b, "E10") }

// Section 1.3 extensions.
func BenchmarkNLD(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkHereditary(b *testing.B) { benchExperiment(b, "E12") }

// Design-choice ablation: the two LOCAL runtimes.
func BenchmarkRuntimeAblation(b *testing.B) { benchExperiment(b, "E13") }

// Section 3.3 threshold observation and the PO model.
func BenchmarkRandomizationThreshold(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkPOModel(b *testing.B)                { benchExperiment(b, "E15") }
