// The Id-oblivious simulation A* (Section 1): under (¬B, ¬C) identifiers are
// redundant — A* rejects a view iff SOME identifier assignment makes the
// original algorithm reject. This example shows the simulation agreeing with
// well-behaved deciders, and the exact failure mode that Theorem 1 exploits
// when identifier VALUES carry information.
//
//	go run ./examples/obliviouslift
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hereditary"
	"repro/internal/local"
	"repro/internal/oblivious"
	"repro/internal/props"
)

func main() {
	fmt.Println("== A*: the generic Id-oblivious simulation")

	// A well-behaved decider (ignores identifier values): the lift agrees.
	alg := local.AsOblivious(props.TriangleFreeVerifier())
	lift := hereditary.ObliviousLift(alg, 8)
	suite := props.ColoringSuite() // any labelled instances will do here
	rep := hereditary.CompareLift(alg, lift, suite)
	fmt.Printf("triangle-free decider vs its lift: agreement %d/%d\n",
		rep.Agreed, rep.Instances)

	// A size-sniffing decider (rejects on a large identifier — the paper's
	// Section 2 decider in miniature): the lift quantifies over ALL
	// assignments, so as soon as the domain contains a large value, A*
	// rejects everything. Under (¬B, ¬C) this is CORRECT behaviour for the
	// property A decides; under (B) or (C) it is the failure the paper
	// builds its separations on.
	sniffer := local.AlgorithmFunc("size-sniffer", 1, func(view *graph.View) local.Verdict {
		return local.Verdict(view.MaxIDInView() < 5)
	})
	cycle := graph.UniformlyLabeled(graph.Cycle(4), "")

	smallDomain := oblivious.NewSimulation(sniffer, []int{0, 1, 2, 3, 4})
	bigDomain := oblivious.NewSimulation(sniffer, []int{0, 1, 2, 3, 4, 5, 6, 7})
	fmt.Printf("\nsize-sniffer lift, domain {0..4}: accepted=%v (no rejecting assignment exists)\n",
		local.RunOblivious(smallDomain, cycle).Accepted)
	fmt.Printf("size-sniffer lift, domain {0..7}: accepted=%v (assignment with id>=5 rejects)\n",
		local.RunOblivious(bigDomain, cycle).Accepted)

	// Construction tasks make the same point without any search: on a
	// transitive instance all views coincide, so any Id-oblivious algorithm
	// outputs the SAME thing everywhere — edge orientation is impossible,
	// while with identifiers it is a one-liner.
	fmt.Println("\n== construction-task separation (Section 1.3)")
	l := graph.UniformlyLabeled(graph.Cycle(6), "")
	in := graph.NewInstance(l, []int{3, 1, 4, 0, 5, 2})
	outputs := oblivious.RunOutputs(oblivious.OrientEdgesWithIDs(), in)
	err := oblivious.ValidOrientation(l, outputs)
	fmt.Printf("orientation with identifiers: valid=%v\n", err == nil)
	code, err := oblivious.ObliviousOutputsIdentical(l, 1)
	must(err)
	fmt.Printf("oblivious views on C6 are all identical (single code, %d bytes)\n", len(code))
	fmt.Println("   => every Id-oblivious algorithm outputs a constant; no constant orients a cycle")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
