// Bounded identifiers (Section 2 end-to-end): identifiers leak the graph
// size through the bound f, and that leak is exactly what separates LD from
// LD* under (B).
//
// The example runs both sides:
//
//   - the cycle promise problem: an ID-using decider separates r-cycles from
//     f(r)+1-cycles, while the complete view sets of the two cycles are
//     verified to be identical — no Id-oblivious algorithm can tell them
//     apart;
//
//   - the promise-free tree construction: T_r versus the small instances
//     H_r, decided by structure checks plus the identifier threshold R(r).
//
//     go run ./examples/boundedids
package main

import (
	"fmt"

	"repro/internal/bounded"
	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

func main() {
	// --- Part 1: the cycle promise problem under f(n) = 2n.
	p := bounded.Params{R: 8, Bound: ids.Linear(2)}
	prob, err := p.CyclePromise()
	must(err)
	fmt.Printf("== cycle promise problem: C%d (yes) vs C%d (no), f(n)=2n\n",
		prob.Yes[0].N(), prob.No[0].N())

	decider := p.CycleIDDecider()
	for _, side := range []struct {
		name string
		l    *graph.Labeled
	}{{"yes", prob.Yes[0]}, {"no", prob.No[0]}} {
		// Adversarial legal identifiers: the largest values under the bound.
		assignment := ids.Adversarial(side.l.N(), p.Bound)
		out := local.Run(decider, graph.NewInstance(side.l, assignment))
		fmt.Printf("%-3s instance, adversarial ids: accepted=%v\n", side.name, out.Accepted)
	}
	same, err := p.CycleViewsIdentical(2)
	must(err)
	fmt.Printf("oblivious views of the two cycles identical at horizon 2: %v\n", same)
	fmt.Println("   => identifiers are the ONLY thing separating these instances")

	// --- Part 2: the promise-free construction (layered trees + pivot).
	tp := bounded.Params{R: 1, Bound: ids.Linear(1)}
	fmt.Printf("\n== promise-free: T_r (depth R(r)=%d) vs H_r under f(n)=n\n", tp.BigR())
	suite, err := tp.TreeSuite()
	must(err)
	rep := decide.VerifyLD(tp.IDDecider(), suite, decide.BoundedIDs(tp.Bound, 11), 4)
	fmt.Println(rep)

	// The Id-oblivious structure verifier accepts BOTH small and large
	// instances — it decides P', not P; the identifier threshold is what
	// rejects T_r.
	verifier := tp.StructureVerifier()
	large := tp.LargeInstance()
	smalls, err := tp.AllSmallInstances()
	must(err)
	fmt.Printf("structure verifier on T_r: accepted=%v (T_r ∈ P')\n",
		local.RunOblivious(verifier, large).Accepted)
	fmt.Printf("structure verifier on an H+: accepted=%v\n",
		local.RunOblivious(verifier, smalls[0]).Accepted)

	// Coverage: the share of T_r views that already occur in small
	// instances (the indistinguishability behind P ∉ LD*).
	cov, err := bounded.Params{R: 3, Bound: ids.Linear(1)}.MeasureCoverageAtDepth(8, 1)
	must(err)
	fmt.Printf("\nview coverage (r=3, depth-8 host, horizon 1): overall %.3f, interior %.3f\n",
		cov.Fraction(), cov.InteriorFraction())
	fmt.Println("   => interior coverage -> 1 as r grows; see EXPERIMENTS.md (E5)")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
