// Nondeterministic local decision (NLD): certificates subsume identifiers.
// An NLD verifier accepts a yes-instance under SOME certificate and rejects
// a no-instance under EVERY certificate. This example shows (a) a classic
// NLD verifier (distance fields certifying the existence of a marked node)
// and (b) the paper's Section 1.3 extension NLD* = NLD: guessing identifiers
// as certificates makes any ID-using local verifier Id-oblivious.
//
//	go run ./examples/nldcertificates
package main

import (
	"fmt"

	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/hereditary"
	"repro/internal/ids"
	"repro/internal/local"
)

func main() {
	fmt.Println("== (a) certifying 'some node is marked' with distance fields")
	verifier := decide.NLDVerifierFunc("dist-to-marker", 1, distVerify)

	path := graph.NewLabeled(graph.Path(6),
		[]graph.Label{"marked", "plain", "plain", "plain", "plain", "plain"})
	honest := decide.Certificate{"0", "1", "2", "3", "4", "5"}
	out := decide.RunNLD(verifier, path, honest)
	fmt.Printf("yes-instance, honest certificate: accepted=%v\n", out.Accepted)

	unmarked := graph.UniformlyLabeled(graph.Path(6), "plain")
	fooled := 0
	certs := decide.RandomCertificates(6, 100, []graph.Label{"0", "1", "2", "3", "4", "5"}, 9)
	for _, cert := range certs {
		if decide.RunNLD(verifier, unmarked, cert).Accepted {
			fooled++
		}
	}
	fmt.Printf("no-instance, %d random certificates: fooled=%d (want 0)\n", len(certs), fooled)

	fmt.Println("\n== (b) NLD* = NLD: guess the identifiers")
	// An ID-using verifier: degree-2 and no triangle corner (decides
	// 'cycle of length >= 4' on connected 2-regular inputs).
	alg := local.AlgorithmFunc("cycle>=4", 1, func(view *graph.View) local.Verdict {
		if view.G.Degree(view.Root) != 2 {
			return local.No
		}
		nbrs := view.G.Neighbors(view.Root)
		return local.Verdict(!view.G.HasEdge(int(nbrs[0]), int(nbrs[1])))
	})
	oblivious := hereditary.GuessIDVerifier(alg)

	c6 := graph.UniformlyLabeled(graph.Cycle(6), "c")
	honestIDs := hereditary.HonestIDCertificate(ids.Sequential(6))
	fmt.Printf("C6 with honest guessed ids: accepted=%v\n",
		decide.RunNLD(oblivious, c6, honestIDs).Accepted)

	c3 := graph.UniformlyLabeled(graph.Cycle(3), "c")
	fooled = 0
	for _, cert := range decide.RandomCertificates(3, 100, []graph.Label{"0", "1", "2", "3", "4"}, 5) {
		if decide.RunNLD(oblivious, c3, cert).Accepted {
			fooled++
		}
	}
	fmt.Printf("C3 with 100 random guessed-id certificates: fooled=%d (want 0)\n", fooled)
	fmt.Println("\nnondeterminism buys what identifiers provide — which is why the paper's")
	fmt.Println("separation needs the deterministic classes: NLD* = NLD but LD* != LD.")
}

func distVerify(view *graph.View) local.Verdict {
	lab, cert := decide.SplitCertLabel(view.Labels[view.Root])
	d := atoi(cert)
	if d < 0 {
		return local.No
	}
	if lab == "marked" {
		return local.Verdict(d == 0)
	}
	if d == 0 {
		return local.No
	}
	for _, u := range view.G.Neighbors(view.Root) {
		_, ucert := decide.SplitCertLabel(view.Labels[u])
		if atoi(ucert) == d-1 {
			return local.Yes
		}
	}
	return local.No
}

func atoi(s graph.Label) int {
	if s == "" {
		return -1
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}
