package main

import (
	"os"
	"testing"
)

// Smoke test: the example must run end to end (it panics on any error).
// Stdout is routed to /dev/null so `go test ./...` output stays readable;
// the printed narrative is exercised, not asserted on.
func TestExampleRuns(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	main()
}
