// Self-stabilizing decision under transient label corruption: the E16
// protocol on the pyramidal G(M, r), walked one episode at a time.
//
// A decided (accepting) instance is hit by a transient fault — k labels
// corrupted under a fault model — and then heals: each victim is restored
// after a geometric number of rounds. After every round the radius-1
// pyramidal label verifier re-decides the whole instance. Two questions per
// episode: how many rounds until the verdict is correct again (recovery),
// and for how many rounds did the corrupted instance read as ACCEPTED
// (exposure — a committed wrong verdict)?
//
// The three fault models form an exposure gradient the verifier prices
// exactly: Randomize writes garbage that breaks the label grammar at every
// victim (zero exposure by construction), Flip substitutes other legal
// labels (the orientation check catches most), and Swap exchanges label
// pairs — swapping two equal labels is invisible to ANY label-reading
// verifier, so its exposure is structural.
//
// Every fault draw derives from one seed through per-site splitmix64
// streams (internal/fault), so each episode — victims, heal times, the
// whole table — replays bit-identically.
//
//	go run ./examples/selfstab
package main

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/halting"
	"repro/internal/local"
	"repro/internal/turing"
)

func main() {
	fmt.Println("== Self-stabilization: corrupt, heal, re-decide on the pyramidal G(M, r)")

	p := halting.Params{Machine: turing.Counter(2, '0'), R: 1, MaxSteps: 100, FragmentLimit: 10}
	asm, err := p.BuildPyramidalG()
	must(err)
	dec := local.EngineObliviousDecider(p.PyramidalLabelVerifier())
	cache := engine.NewViewCache()
	opts := engine.Options{EarlyExit: true, Cache: cache}
	fmt.Printf("instance: pyramidal G(%s, r=%d), n=%d, verifier=%s\n\n",
		p.Machine.Name, p.R, asm.Labeled.N(), "radius-1 label sanity")

	// One episode in slow motion: watch a single Flip corruption heal.
	cfg := fault.SelfStabConfig{Model: fault.Flip, Rate: 0.05, Decider: dec, Options: opts}
	ep, err := fault.RunEpisode(asm.Labeled, cfg, 42)
	must(err)
	fmt.Printf("one flip episode (seed 42): %d victims %v\n", len(ep.Victims), ep.Victims)
	fmt.Printf("  recovered=%v at round %d, exposed rounds=%d, engine evaluations=%d\n\n",
		ep.Recovered, ep.RecoveryRound, ep.ExposedRounds, ep.Evaluations)

	// The sweep: every (model, rate) cell is engine.EvalTrials over
	// independent episodes, so recovery comes with a Wilson interval.
	fmt.Println("recovery sweep (20 episodes per cell):")
	fmt.Printf("%-10s %6s %10s %12s %15s %17s\n",
		"model", "rate", "recovered", "mean rounds", "exposed rounds", "exposed episodes")
	seed := int64(0)
	for _, model := range []fault.LabelModel{fault.Flip, fault.Swap, fault.Randomize} {
		for _, rate := range []float64{0.02, 0.10} {
			seed++
			sw, err := fault.RecoverySweep(asm.Labeled, fault.SelfStabConfig{
				Model: model, Rate: rate, Decider: dec, Options: opts,
			}, engine.TrialOptions{Trials: 20, Seed: seed})
			must(err)
			fmt.Printf("%-10s %6.2f %10s %12.2f %15d %17d\n",
				model, rate, fmt.Sprintf("%d/%d", sw.Trials.Accepted, sw.Episodes),
				sw.MeanRecoveryRounds, sw.ExposedRounds, sw.ExposedEpisodes)
		}
	}
	cs := cache.Stats()
	fmt.Printf("\nshared view cache across all episodes: hits=%d misses=%d rejects=%d entries=%d\n",
		cs.Hits, cs.Misses, cs.Rejects, cs.Entries)

	fmt.Println("\nevery episode recovers within the heal budget; only faults the label")
	fmt.Println("grammar cannot see (equal-label swaps) are ever exposed as accepts.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
