// Halting tables (Section 3 end-to-end): build G(M, r) — execution table,
// fragment collection, pivot gluing — run the LD decider, and watch the
// neighbourhood generator B halt on a machine that never does.
//
//	go run ./examples/haltingtable
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/halting"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/turing"
)

func main() {
	// An L0 machine (halts with output 0) and an L1 machine (output 1).
	l0 := turing.Counter(3, '0')
	l1 := turing.Counter(3, '1')

	for _, m := range []*turing.Machine{l0, l1} {
		p := halting.Params{Machine: m, R: 1, MaxSteps: 1000, FragmentLimit: 40}
		asm, err := p.BuildG()
		must(err)
		fmt.Printf("== G(%s, 1): table %dx%d, %d placed fragments, %d nodes (truncated=%v)\n",
			m.Name, asm.TableHeight(), asm.TableWidth(), len(asm.Fragments),
			asm.Labeled.N(), asm.Truncated)

		must(asm.VerifyG())
		fmt.Println("   structural verification: OK")

		// The LD decider: stage 1 structure checks, stage 2 simulate M for
		// Id(v) steps. Sequential identifiers already reach the runtime.
		dec := p.LDDecider()
		out := local.Run(dec, graph.NewInstance(asm.Labeled, ids.Sequential(asm.Labeled.N())))
		fmt.Printf("   LD decider accepted=%v (want %v: output %c)\n\n",
			out.Accepted, m.Name == l0.Name, mustOutput(m))
	}

	// The generator B is total: it halts even on the looper.
	loop := halting.Params{Machine: turing.Looper(), R: 1, MaxSteps: 1000, FragmentLimit: 40}
	gen, err := loop.GenerateNeighborhoods()
	must(err)
	fmt.Printf("== B(looper, 1) halted with %d neighbourhood codes (window %d nodes)\n",
		len(gen.Codes), gen.WindowNodes)

	// And the separation algorithm R: a budget-5 Id-oblivious candidate is
	// fooled by a runtime-9 machine of L1.
	fooledOn := turing.Counter(8, '1')
	sep := halting.Params{Machine: fooledOn, R: 1, MaxSteps: 1000, FragmentLimit: 40}
	res, err := sep.RunSeparation(&halting.BudgetedCandidate{Machine: fooledOn, Budget: 5})
	must(err)
	fmt.Printf("== separation R with budget-5 candidate on %s: accepted=%v (FOOLED — machine outputs 1)\n",
		fooledOn.Name, res.Accepted)
	fmt.Println("   a correct Id-oblivious decider would separate L0/L1 — impossible (Lemma 1)")
}

func mustOutput(m *turing.Machine) turing.Symbol {
	res, err := turing.Run(m, 1000)
	must(err)
	return res.Output
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
