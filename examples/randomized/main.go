// Randomised Id-oblivious decision (Corollary 1): coins substitute for
// identifiers. Each node tosses a fair coin until the first head (l tosses)
// and simulates M for 4^l steps; some node almost surely draws a budget past
// M's runtime and catches a bad output.
//
// The sweeps run through engine.EvalTrials — the structure verifier runs
// once as the deterministic prefix, then trials redraw only the coin budgets
// — and every estimate comes with its Wilson 95% confidence interval.
//
//	go run ./examples/randomized
package main

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/halting"
	"repro/internal/turing"
)

func main() {
	fmt.Println("== Corollary 1: a (1, 1-o(1)) Id-oblivious randomised decider for P")

	// Yes side: M outputs 0 — never rejected, p = 1.
	yes := halting.Params{Machine: turing.Counter(3, '0'), R: 1, MaxSteps: 1000, FragmentLimit: 15}
	asmYes, err := yes.BuildG()
	must(err)
	stats, err := yes.RejectionTrials(asmYes, engine.TrialOptions{Trials: 100, Seed: 1})
	must(err)
	fmt.Printf("yes-instance G(%s): acceptance rate %.3f, CI95 [%.3f, %.3f] (want 1.000)\n",
		yes.Machine.Name, stats.Estimate, stats.CI.Low, stats.CI.High)

	// No side: M outputs 1 with runtime s; rejection needs some node to draw
	// a budget >= s.
	fmt.Println("\nno-instances (machine outputs 1):")
	fmt.Printf("%-14s %8s %8s %12s %18s %12s\n",
		"machine", "runtime", "n(G)", "rejectRate", "rejectCI95", "paperBound")
	for _, k := range []int{3, 7, 15} {
		p := halting.Params{Machine: turing.Counter(k, '1'), R: 1, MaxSteps: 1000, FragmentLimit: 15}
		asm, err := p.BuildG()
		must(err)
		stats, err := p.RejectionTrials(asm, engine.TrialOptions{Trials: 100, Seed: 7})
		must(err)
		reject := 1 - stats.Estimate
		s := float64(k + 1)
		n := float64(asm.Labeled.N())
		bound := 1 - math.Pow(1-1/math.Sqrt(s), n)
		fmt.Printf("%-14s %8d %8d %12.3f    [%.3f, %.3f] %12.3f\n",
			p.Machine.Name, k+1, asm.Labeled.N(), reject, 1-stats.CI.High, 1-stats.CI.Low, bound)
	}

	fmt.Println("\nrandomness thus buys back what obliviousness lost: the decider needs")
	fmt.Println("no identifiers, only one node whose coin streak reaches the runtime.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
