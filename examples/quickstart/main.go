// Quickstart: define a labelled-graph property, write its Id-oblivious local
// verifier, and run it in the LOCAL model — both by direct view evaluation
// and on the goroutine-per-node message-passing runtime.
//
// The property here is proper 3-colouring, one of the paper's running
// examples of a locally decidable property where identifiers play no role.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/props"
)

func main() {
	// A 6-cycle with a proper 2-colouring (also a proper 3-colouring).
	good := graph.NewLabeled(graph.Cycle(6), []graph.Label{"0", "1", "0", "1", "0", "1"})
	// The same cycle with one clash.
	bad := graph.NewLabeled(graph.Cycle(6), []graph.Label{"0", "0", "1", "0", "1", "0"})

	verifier := props.ThreeColoringVerifier()

	fmt.Println("== proper 3-colouring, Id-oblivious verifier, horizon 1")
	for name, inst := range map[string]*graph.Labeled{"good": good, "bad": bad} {
		out := local.RunOblivious(verifier, inst)
		fmt.Printf("%-5s accepted=%v verdicts=%v\n", name, out.Accepted, out.Verdicts)
	}

	// Decision semantics: yes-instances need ALL nodes to say yes;
	// no-instances need at least one no. The clash in `bad` is seen by the
	// two adjacent equal-coloured nodes only — locality in action.

	fmt.Println("\n== same verifier on the goroutine message-passing runtime")
	out := local.RunMessagePassingOblivious(verifier, good)
	fmt.Printf("good  accepted=%v (one goroutine per node, %d synchronous rounds)\n",
		out.Accepted, verifier.Horizon())

	// Custom properties are one function away:
	atMostOneRed := local.ObliviousFunc("<=1-red-nbr", 1, func(view *graph.View) local.Verdict {
		red := 0
		for _, u := range view.G.Neighbors(view.Root) {
			if view.Labels[u] == "red" {
				red++
			}
		}
		return local.Verdict(red <= 1)
	})
	l := graph.NewLabeled(graph.Star(5), []graph.Label{"blue", "red", "red", "blue", "blue"})
	fmt.Println("\n== custom property on a star")
	fmt.Printf("accepted=%v (centre sees two red leaves)\n",
		local.RunOblivious(atMostOneRed, l).Accepted)
}
