package repro

import (
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/halting"
	"repro/internal/local"
	"repro/internal/props"
	"repro/internal/turing"
)

// Engine-vs-seed benchmarks at reproduction scale: the acceptance bar for
// the unified engine is >= 2x over the seed per-node extraction path on a
// structured instance at n >= 10^4, plus the large Section 3 halting
// instances that motivated the batching in the first place.

// seedEval is the seed-era evaluation loop: one map-backed view extraction
// (Ball + InducedSubgraph) per node, fresh allocations throughout.
func seedEval(alg local.ObliviousAlgorithm, l *graph.Labeled) bool {
	accepted := true
	for v := 0; v < l.N(); v++ {
		if !bool(alg.DecideOblivious(graph.ObliviousViewOf(l, v, alg.Horizon()))) {
			accepted = false
		}
	}
	return accepted
}

func BenchmarkCycle10kSeedPath(b *testing.B) {
	l := graph.UniformlyLabeled(graph.Cycle(10000), "")
	alg := props.BoundedDegreeVerifier(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !seedEval(alg, l) {
			b.Fatal("cycle is 2-regular")
		}
	}
}

func BenchmarkCycle10kEngine(b *testing.B) {
	l := graph.UniformlyLabeled(graph.Cycle(10000), "")
	dec := local.EngineObliviousDecider(props.BoundedDegreeVerifier(2))
	for _, tc := range []struct {
		name string
		opts engine.Options
	}{
		{"sequential", engine.Options{}},
		{"sharded", engine.Options{Scheduler: engine.Sharded}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !engine.EvalOblivious(dec, l, tc.opts).Accepted {
					b.Fatal("cycle is 2-regular")
				}
			}
		})
	}
}

// The Section 3 halting instance G(M, r): the structure verifier sweeps
// every node's radius-2 view, which is the hot loop of experiments E1, E7
// and E10.
var haltingBench struct {
	once sync.Once
	p    halting.Params
	asm  *halting.Assembly
	err  error
}

func haltingInstance(b *testing.B) (halting.Params, *halting.Assembly) {
	haltingBench.once.Do(func() {
		haltingBench.p = halting.Params{
			Machine: turing.Counter(6, '0'), R: 1, MaxSteps: 500, FragmentLimit: 40,
		}
		haltingBench.asm, haltingBench.err = haltingBench.p.BuildG()
	})
	if haltingBench.err != nil {
		b.Fatal(haltingBench.err)
	}
	return haltingBench.p, haltingBench.asm
}

func BenchmarkHaltingStructureSeedPath(b *testing.B) {
	p, asm := haltingInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedEval(p.StructureVerifier(), asm.Labeled)
	}
}

func BenchmarkHaltingStructureEngine(b *testing.B) {
	p, asm := haltingInstance(b)
	dec := local.EngineObliviousDecider(p.StructureVerifier())
	for _, tc := range []struct {
		name string
		opts engine.Options
	}{
		{"sequential", engine.Options{}},
		{"sharded", engine.Options{Scheduler: engine.Sharded}},
		{"sharded-earlyexit", engine.Options{Scheduler: engine.Sharded, EarlyExit: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.EvalOblivious(dec, asm.Labeled, tc.opts)
			}
		})
	}
}
