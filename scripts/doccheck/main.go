// Command doccheck enforces the godoc contract on the packages whose APIs
// carry allocation-behaviour promises: every exported symbol (function,
// method on an exported type, type, constant, variable) must have a doc
// comment. It is a deliberately small, dependency-free subset of a
// revive-style exported-comment check, run in CI after go vet.
//
// Usage:
//
//	go run ./scripts/doccheck ./internal/graph ./internal/tree ./internal/engine
//
// Exit status 1 lists every undocumented exported symbol; 0 means clean.
// Test files are excluded — test helpers are not API.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		findings, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		bad += len(findings)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbols\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns one
// finding line per undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					name := d.Name.Name
					if d.Recv != nil && len(d.Recv.List) == 1 {
						recv := receiverName(d.Recv.List[0].Type)
						if recv != "" && !ast.IsExported(recv) {
							continue // method on an unexported type
						}
						name = recv + "." + name
					}
					report(d.Pos(), "function", name)
				case *ast.GenDecl:
					if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
						continue
					}
					groupDoc := d.Doc != nil && len(d.Specs) > 1
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							// A doc comment on the grouped decl covers its
							// members; a lone spec needs one on either.
							if s.Doc != nil || groupDoc || (d.Doc != nil && len(d.Specs) == 1) {
								continue
							}
							for _, name := range s.Names {
								if name.IsExported() {
									report(name.Pos(), d.Tok.String(), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return findings, nil
}

// receiverName extracts the type name from a method receiver expression.
func receiverName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return receiverName(e.X)
	case *ast.IndexExpr: // generic receiver
		return receiverName(e.X)
	case *ast.IndexListExpr:
		return receiverName(e.X)
	}
	return ""
}
