// Command benchgate compares one benchmark between two recorded benchmark
// artifacts (go test -json output or plain -bench text) and fails when the
// current result regresses beyond a tolerance.
//
// Because the committed baseline and a CI run execute on different machines,
// the gate compares machine-independent ratios rather than wall-clock: the
// benchmark's ns/op is normalised by a reference benchmark measured in the
// same file (for the pyramid construction gate, the n=10^6 cycle freeze).
// An increase of that ratio beyond the tolerance means the benchmark
// genuinely regressed relative to the suite's own baseline cost on
// identical hardware, not that the runner was slow.
//
// Usage:
//
//	go run ./scripts/benchgate -baseline BENCH_3.json -current current.txt \
//	    -benchmark BenchmarkNewPyramid/h=10 \
//	    -reference BenchmarkConstructCycle/n=1000000/builder -max-ratio 0.06
//
// With -reference omitted the gate compares raw ns/op (same-machine use).
//
// The gate can also enforce allocation contracts from -benchmem output:
// -max-allocs N fails when the benchmark's recorded allocs/op exceed N in
// the -current artifact (no baseline needed; pass -max-allocs alone to gate
// a 0 allocs/op steady-state claim). Ratio and alloc gates compose: when
// both -baseline and -max-allocs are given, both must pass.
//
// With -reference but no -baseline the gate runs in same-artifact mode: the
// benchmark's ns/op divided by the reference's ns/op (both from -current)
// must stay within -max-ratio. This gates a speedup measured against an
// in-tree replica of the old code path on the same run and hardware — the
// trial-engine gate demands engine ≤ 0.25× the sequential trial loop, i.e.
// a retained ≥4× speedup — with no committed baseline needed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	benchLine = regexp.MustCompile(`(Benchmark[^\s]+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	allocLine = regexp.MustCompile(`(Benchmark[^\s]+)(?:-\d+)?\s+\d+\s+[0-9.]+ ns/op.*?([0-9]+) allocs/op`)
)

// artifact holds the per-benchmark minima parsed from one recorded run:
// ns/op always, allocs/op when the run used -benchmem.
type artifact struct {
	ns     map[string]float64
	allocs map[string]float64
}

// parseArtifact extracts min ns/op (and min allocs/op, when present) per
// benchmark name from a go test -json stream or plain benchmark text.
func parseArtifact(path string) (artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return artifact{}, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var ev struct{ Output string }
		if json.Unmarshal([]byte(line), &ev) == nil && ev.Output != "" {
			text.WriteString(ev.Output)
		} else if !strings.HasPrefix(strings.TrimSpace(line), "{") {
			text.WriteString(line)
			text.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return artifact{}, err
	}
	a := artifact{ns: make(map[string]float64), allocs: make(map[string]float64)}
	collect := func(re *regexp.Regexp, into map[string]float64) {
		for _, m := range re.FindAllStringSubmatch(text.String(), -1) {
			name := strings.TrimSuffix(m[1], "-")
			// Strip the -GOMAXPROCS suffix go test appends to parallel
			// benchmarks.
			if i := strings.LastIndex(name, "-"); i > 0 {
				if _, err := strconv.Atoi(name[i+1:]); err == nil {
					name = name[:i]
				}
			}
			val, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			if prev, ok := into[name]; !ok || val < prev {
				into[name] = val
			}
		}
	}
	collect(benchLine, a.ns)
	collect(allocLine, a.allocs)
	return a, nil
}

func metric(results artifact, bench, reference, path string) (float64, error) {
	ns, ok := results.ns[bench]
	if !ok {
		return 0, fmt.Errorf("benchmark %s not found in %s", bench, path)
	}
	if reference == "" {
		return ns, nil
	}
	ref, ok := results.ns[reference]
	if !ok {
		return 0, fmt.Errorf("reference %s not found in %s", reference, path)
	}
	return ns / ref, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline artifact (go test -json or bench text); optional with -max-allocs")
	current := flag.String("current", "", "current artifact")
	bench := flag.String("benchmark", "", "benchmark name to gate")
	reference := flag.String("reference", "", "same-file reference benchmark for machine-independent normalisation")
	maxRatio := flag.Float64("max-ratio", 1.2, "maximum allowed current/baseline metric ratio")
	maxAllocs := flag.Float64("max-allocs", -1, "maximum allowed allocs/op in the current artifact (-benchmem runs; negative disables)")
	flag.Parse()
	if *current == "" || *bench == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current and -benchmark are required")
		os.Exit(2)
	}
	if *baseline == "" && *maxAllocs < 0 && *reference == "" {
		fmt.Fprintln(os.Stderr, "benchgate: nothing to gate — provide -baseline, -reference and/or -max-allocs")
		os.Exit(2)
	}
	cur, err := parseArtifact(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if *maxAllocs >= 0 {
		allocs, ok := cur.allocs[*bench]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: no allocs/op for %s in %s (run with -benchmem)\n", *bench, *current)
			os.Exit(2)
		}
		fmt.Printf("benchgate: %s allocs/op %.0f (max %.0f)\n", *bench, allocs, *maxAllocs)
		if allocs > *maxAllocs {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s allocates %.0f/op beyond the %.0f allowed\n",
				*bench, allocs, *maxAllocs)
			os.Exit(1)
		}
	}
	if *baseline == "" && *reference != "" {
		ratio, err := metric(cur, *bench, *reference, *current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: %s at %.3fx of %s in %s (max %.2f)\n",
			*bench, ratio, *reference, *current, *maxRatio)
		if ratio > *maxRatio {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s runs at %.3fx of its reference, above the %.2f allowed\n",
				*bench, ratio, *maxRatio)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		base, err := parseArtifact(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		baseMetric, err := metric(base, *bench, *reference, *baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		curMetric, err := metric(cur, *bench, *reference, *current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		ratio := curMetric / baseMetric
		unit := "ns/op"
		if *reference != "" {
			unit = "x reference"
		}
		fmt.Printf("benchgate: %s baseline %.4g %s, current %.4g %s, ratio %.3f (max %.2f)\n",
			*bench, baseMetric, unit, curMetric, unit, ratio, *maxRatio)
		if ratio > *maxRatio {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s regressed %.1f%% beyond the %.0f%% tolerance\n",
				*bench, (ratio-1)*100, (*maxRatio-1)*100)
			os.Exit(1)
		}
	}
	fmt.Println("benchgate: OK")
}
