// Command benchgate compares one benchmark between two recorded benchmark
// artifacts (go test -json output or plain -bench text) and fails when the
// current result regresses beyond a tolerance.
//
// Because the committed baseline and a CI run execute on different machines,
// the gate compares machine-independent ratios rather than wall-clock: the
// benchmark's ns/op is normalised by a reference benchmark measured in the
// same file (for the pyramid construction gate, the n=10^6 cycle freeze).
// An increase of that ratio beyond the tolerance means the benchmark
// genuinely regressed relative to the suite's own baseline cost on
// identical hardware, not that the runner was slow.
//
// Usage:
//
//	go run ./scripts/benchgate -baseline BENCH_3.json -current current.txt \
//	    -benchmark BenchmarkNewPyramid/h=10 \
//	    -reference BenchmarkConstructCycle/n=1000000/builder -max-ratio 0.06
//
// With -reference omitted the gate compares raw ns/op (same-machine use).
//
// The gate can also enforce allocation contracts from -benchmem output:
// -max-allocs N fails when the benchmark's recorded allocs/op exceed N in
// the -current artifact (no baseline needed; pass -max-allocs alone to gate
// a 0 allocs/op steady-state claim). Ratio and alloc gates compose: when
// both -baseline and -max-allocs are given, both must pass.
//
// With -reference but no -baseline the gate runs in same-artifact mode: the
// benchmark's ns/op divided by the reference's ns/op (both from -current)
// must stay within -max-ratio. This gates a speedup measured against an
// in-tree replica of the old code path on the same run and hardware — the
// trial-engine gate demands engine ≤ 0.25× the sequential trial loop, i.e.
// a retained ≥4× speedup — with no committed baseline needed.
//
// -metric NAME gates a custom b.ReportMetric unit (e.g. "hitrate") instead
// of ns/op, and -min-ratio adds a lower bound on the computed ratio — the
// shape a higher-is-better metric needs. The bounded-cache gate combines
// them: the bounded arm's hitrate divided by the unbounded arm's (same
// artifact) must stay at or above 0.95.
//
// -max-value and -min-value gate the metric's absolute value in -current,
// with no baseline or reference — the shape a self-normalising benchmark
// needs. The store steady-state gate uses it: the benchmark interleaves its
// own two arms and reports their ratio as an "overhead" metric, which must
// stay at or below 1.05.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	benchLine = regexp.MustCompile(`(Benchmark[^\s]+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	allocLine = regexp.MustCompile(`(Benchmark[^\s]+)(?:-\d+)?\s+\d+\s+[0-9.]+ ns/op.*?([0-9]+) allocs/op`)
)

// artifact holds the per-benchmark minima parsed from one recorded run:
// ns/op always, allocs/op when the run used -benchmem, plus one optional
// custom metric (a b.ReportMetric unit named by -metric).
type artifact struct {
	ns     map[string]float64
	allocs map[string]float64
	custom map[string]float64
}

// parseArtifact extracts min ns/op (and min allocs/op, when present) per
// benchmark name from a go test -json stream or plain benchmark text. When
// metricName is non-empty the per-benchmark minima of that custom unit are
// collected too.
func parseArtifact(path, metricName string) (artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return artifact{}, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var ev struct{ Output string }
		if json.Unmarshal([]byte(line), &ev) == nil && ev.Output != "" {
			text.WriteString(ev.Output)
		} else if !strings.HasPrefix(strings.TrimSpace(line), "{") {
			text.WriteString(line)
			text.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return artifact{}, err
	}
	a := artifact{ns: make(map[string]float64), allocs: make(map[string]float64), custom: make(map[string]float64)}
	collect := func(re *regexp.Regexp, into map[string]float64) {
		for _, m := range re.FindAllStringSubmatch(text.String(), -1) {
			name := strings.TrimSuffix(m[1], "-")
			// Strip the -GOMAXPROCS suffix go test appends to parallel
			// benchmarks.
			if i := strings.LastIndex(name, "-"); i > 0 {
				if _, err := strconv.Atoi(name[i+1:]); err == nil {
					name = name[:i]
				}
			}
			val, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			if prev, ok := into[name]; !ok || val < prev {
				into[name] = val
			}
		}
	}
	collect(benchLine, a.ns)
	collect(allocLine, a.allocs)
	if metricName != "" {
		customLine := regexp.MustCompile(
			`(Benchmark[^\s]+)(?:-\d+)?\s+\d+\s.*?([0-9.]+(?:[eE][+-]?[0-9]+)?) ` + regexp.QuoteMeta(metricName) + `\b`)
		collect(customLine, a.custom)
	}
	return a, nil
}

// metric reads the gated value of one benchmark — ns/op or the -metric
// custom unit — optionally normalised by the reference benchmark's value in
// the same artifact.
func metric(results artifact, bench, reference, metricName, path string) (float64, error) {
	vals := results.ns
	unit := "ns/op"
	if metricName != "" {
		vals = results.custom
		unit = metricName
	}
	v, ok := vals[bench]
	if !ok {
		return 0, fmt.Errorf("benchmark %s has no %s in %s", bench, unit, path)
	}
	if reference == "" {
		return v, nil
	}
	ref, ok := vals[reference]
	if !ok {
		return 0, fmt.Errorf("reference %s has no %s in %s", reference, unit, path)
	}
	if ref == 0 {
		return 0, fmt.Errorf("reference %s reports 0 %s in %s", reference, unit, path)
	}
	return v / ref, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline artifact (go test -json or bench text); optional with -max-allocs")
	current := flag.String("current", "", "current artifact")
	bench := flag.String("benchmark", "", "benchmark name to gate")
	reference := flag.String("reference", "", "same-file reference benchmark for machine-independent normalisation")
	maxRatio := flag.Float64("max-ratio", 1.2, "maximum allowed current/baseline metric ratio")
	minRatio := flag.Float64("min-ratio", -1, "minimum required metric ratio (higher-is-better metrics; negative disables)")
	metricName := flag.String("metric", "", "custom b.ReportMetric unit to gate instead of ns/op (e.g. hitrate)")
	maxAllocs := flag.Float64("max-allocs", -1, "maximum allowed allocs/op in the current artifact (-benchmem runs; negative disables)")
	maxValue := flag.Float64("max-value", -1, "maximum allowed absolute metric value in the current artifact (negative disables)")
	minValue := flag.Float64("min-value", -1, "minimum required absolute metric value in the current artifact (negative disables)")
	flag.Parse()
	if *current == "" || *bench == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current and -benchmark are required")
		os.Exit(2)
	}
	if *baseline == "" && *maxAllocs < 0 && *reference == "" && *maxValue < 0 && *minValue < 0 {
		fmt.Fprintln(os.Stderr, "benchgate: nothing to gate — provide -baseline, -reference, -max-allocs and/or -max-value/-min-value")
		os.Exit(2)
	}
	cur, err := parseArtifact(*current, *metricName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if *maxAllocs >= 0 {
		allocs, ok := cur.allocs[*bench]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: no allocs/op for %s in %s (run with -benchmem)\n", *bench, *current)
			os.Exit(2)
		}
		fmt.Printf("benchgate: %s allocs/op %.0f (max %.0f)\n", *bench, allocs, *maxAllocs)
		if allocs > *maxAllocs {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s allocates %.0f/op beyond the %.0f allowed\n",
				*bench, allocs, *maxAllocs)
			os.Exit(1)
		}
	}
	if *maxValue >= 0 || *minValue >= 0 {
		v, err := metric(cur, *bench, "", *metricName, *current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		unit := "ns/op"
		if *metricName != "" {
			unit = *metricName
		}
		fmt.Printf("benchgate: %s %s %.4g (max %.4g, min %.4g)\n", *bench, unit, v, *maxValue, *minValue)
		if *maxValue >= 0 && v > *maxValue {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s %s at %.4g, above the %.4g allowed\n",
				*bench, unit, v, *maxValue)
			os.Exit(1)
		}
		if *minValue >= 0 && v < *minValue {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s %s at %.4g, below the %.4g required\n",
				*bench, unit, v, *minValue)
			os.Exit(1)
		}
	}
	// A failing gate must name the offending metric and show both sides of
	// the comparison, so a red CI line is diagnosable without rerunning:
	// detail carries the two underlying values the ratio was computed from.
	checkBounds := func(ratio float64, unit, detail string) {
		if ratio > *maxRatio {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s %s ratio %.3f (%s), above the %.2f allowed\n",
				*bench, unit, ratio, detail, *maxRatio)
			os.Exit(1)
		}
		if *minRatio >= 0 && ratio < *minRatio {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s %s ratio %.3f (%s), below the %.2f required\n",
				*bench, unit, ratio, detail, *minRatio)
			os.Exit(1)
		}
	}
	gateUnit := "ns/op"
	if *metricName != "" {
		gateUnit = *metricName
	}
	if *baseline == "" && *reference != "" {
		ratio, err := metric(cur, *bench, *reference, *metricName, *current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		curVal, _ := metric(cur, *bench, "", *metricName, *current)
		refVal, _ := metric(cur, *reference, "", *metricName, *current)
		fmt.Printf("benchgate: %s at %.3fx of %s in %s (max %.2f, min %.2f)\n",
			*bench, ratio, *reference, *current, *maxRatio, *minRatio)
		checkBounds(ratio, gateUnit, fmt.Sprintf("current %.4g vs reference %s %.4g",
			curVal, *reference, refVal))
	}
	if *baseline != "" {
		base, err := parseArtifact(*baseline, *metricName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		baseMetric, err := metric(base, *bench, *reference, *metricName, *baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		curMetric, err := metric(cur, *bench, *reference, *metricName, *current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		ratio := curMetric / baseMetric
		unit := gateUnit
		if *reference != "" {
			unit = gateUnit + " x reference"
		}
		fmt.Printf("benchgate: %s baseline %.4g %s, current %.4g %s, ratio %.3f (max %.2f, min %.2f)\n",
			*bench, baseMetric, unit, curMetric, unit, ratio, *maxRatio, *minRatio)
		checkBounds(ratio, unit, fmt.Sprintf("baseline %.4g vs current %.4g", baseMetric, curMetric))
	}
	fmt.Println("benchgate: OK")
}
