// Command benchgate compares one benchmark between two recorded benchmark
// artifacts (go test -json output or plain -bench text) and fails when the
// current result regresses beyond a tolerance.
//
// Because the committed baseline and a CI run execute on different machines,
// the gate compares machine-independent ratios rather than wall-clock: the
// benchmark's ns/op is normalised by a reference benchmark measured in the
// same file (for the engine dedup gate, the no-dedup evaluation of the same
// instance). A >20% increase of that ratio means dedup throughput genuinely
// regressed relative to the engine's own baseline cost on identical
// hardware, not that the runner was slow.
//
// Usage:
//
//	go run ./scripts/benchgate -baseline BENCH_2.json -current BENCH_3.json \
//	    -benchmark BenchmarkDedup/expensive/dedup \
//	    -reference BenchmarkDedup/expensive/no-dedup -max-ratio 1.2
//
// With -reference omitted the gate compares raw ns/op (same-machine use).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(`(Benchmark[^\s]+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseArtifact extracts min ns/op per benchmark name from a go test -json
// stream or plain benchmark text.
func parseArtifact(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var ev struct{ Output string }
		if json.Unmarshal([]byte(line), &ev) == nil && ev.Output != "" {
			text.WriteString(ev.Output)
		} else if !strings.HasPrefix(strings.TrimSpace(line), "{") {
			text.WriteString(line)
			text.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, m := range benchLine.FindAllStringSubmatch(text.String(), -1) {
		name := strings.TrimSuffix(m[1], "-")
		// Strip the -GOMAXPROCS suffix go test appends to parallel benchmarks.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	return out, nil
}

func metric(results map[string]float64, bench, reference, path string) (float64, error) {
	ns, ok := results[bench]
	if !ok {
		return 0, fmt.Errorf("benchmark %s not found in %s", bench, path)
	}
	if reference == "" {
		return ns, nil
	}
	ref, ok := results[reference]
	if !ok {
		return 0, fmt.Errorf("reference %s not found in %s", reference, path)
	}
	return ns / ref, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline artifact (go test -json or bench text)")
	current := flag.String("current", "", "current artifact")
	bench := flag.String("benchmark", "", "benchmark name to gate")
	reference := flag.String("reference", "", "same-file reference benchmark for machine-independent normalisation")
	maxRatio := flag.Float64("max-ratio", 1.2, "maximum allowed current/baseline metric ratio")
	flag.Parse()
	if *baseline == "" || *current == "" || *bench == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline, -current and -benchmark are required")
		os.Exit(2)
	}
	base, err := parseArtifact(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := parseArtifact(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	baseMetric, err := metric(base, *bench, *reference, *baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	curMetric, err := metric(cur, *bench, *reference, *current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	ratio := curMetric / baseMetric
	unit := "ns/op"
	if *reference != "" {
		unit = "x reference"
	}
	fmt.Printf("benchgate: %s baseline %.4g %s, current %.4g %s, ratio %.3f (max %.2f)\n",
		*bench, baseMetric, unit, curMetric, unit, ratio, *maxRatio)
	if ratio > *maxRatio {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s regressed %.1f%% beyond the %.0f%% tolerance\n",
			*bench, (ratio-1)*100, (*maxRatio-1)*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
